// Package ring implements the negacyclic polynomial ring
// R_q = Z_q[X]/(X^N + 1) in residue-number-system (RNS) form, the
// computational substrate of the BFV and CKKS schemes. It provides the
// number-theoretic transform (NTT) with Shoup-precomputed twiddles,
// coefficient-wise arithmetic, Galois automorphisms (the basis of
// encrypted rotation), and exact CRT composition/decomposition to
// math/big integers for the scheme operations that need the full
// coefficient value (decryption scaling, tensor-product scaling, and
// noise measurement).
package ring

import (
	"fmt"
	"math/big"
	"math/bits"
	"sync"

	"choco/internal/nt"
	"choco/internal/par"
)

// Residue-level parallelism thresholds: an operation fans its residue
// rows out across the par worker pool only when level × N (the total
// coefficient count it touches) reaches the threshold for its cost
// class. Measured on amd64: one pool handoff costs ~1-2 µs per helper,
// an NTT row at N=4096 runs ~150 µs while an Add row runs ~4 µs — so
// transforms pay off from ~8k coefficients, cheap coefficient-wise
// loops only from ~32k. Override with SetParallelThresholds for
// benchmarking or to force the parallel paths in tests.
var (
	parMinTransform  = 8 << 10  // NTT, INTT, Automorphism
	parMinCoeffwise  = 16 << 10 // MulCoeffs, MulCoeffsAdd, MulScalar(Big)
	parMinElementary = 32 << 10 // Add, Sub, Neg
)

// SetParallelThresholds overrides the level×N coefficient counts above
// which ring operations fan out across the par pool: transform covers
// NTT/INTT/Automorphism, mul the coefficient-wise products, elementary
// the additive ops. Values <= 0 leave the corresponding threshold
// unchanged. Intended for benchmarks and tests (a tiny test ring never
// crosses the production thresholds).
func SetParallelThresholds(transform, mul, elementary int) {
	if transform > 0 {
		parMinTransform = transform
	}
	if mul > 0 {
		parMinCoeffwise = mul
	}
	if elementary > 0 {
		parMinElementary = elementary
	}
}

// parRows runs fn(i) for each residue row i in [0, rows), fanning out
// across the worker pool when the total coefficient count clears the
// threshold. Rows are fully independent in every RNS operation, so
// parallel and serial execution are bit-identical by construction.
func (r *Ring) parRows(rows, threshold int, fn func(i int)) {
	if rows > 1 && rows*r.N >= threshold {
		par.For(rows, fn)
		return
	}
	for i := 0; i < rows; i++ {
		fn(i)
	}
}

// Ring describes R_q for a fixed degree N and RNS modulus chain.
type Ring struct {
	N      int
	LogN   int
	Moduli []nt.Modulus

	tables []*nttTable

	// CRT precomputations over the full basis.
	bigQ     *big.Int   // product of all moduli
	halfQ    *big.Int   // floor(Q/2), for centered representatives
	qiHat    []*big.Int // Q / q_i
	qiHatInv []uint64   // (Q/q_i)^-1 mod q_i

	// pool recycles scratch polynomials of this ring's shape; see
	// GetPoly/PutPoly. Per-ring (not global) because a Poly's shape is
	// the ring's level × N.
	pool sync.Pool

	// autos caches the per-Galois-element permutation tables used by
	// Automorphism and AutomorphismNTT. Shared (by pointer) with every
	// AtLevel sub-ring: the tables depend only on N, not on the modulus
	// chain.
	autos *autoCache
}

// autoCache memoizes automorphism permutation tables keyed by Galois
// element. A handful of elements recur thousands of times per kernel
// (each rotation step of each layer), so the exponent walk is paid once
// per element instead of once per call.
type autoCache struct {
	mu     sync.RWMutex
	tables map[uint64]*autoTable
}

// autoTable holds the two precomputed views of X -> X^g.
type autoTable struct {
	// coeff is the coefficient-domain permutation packed as
	// dst | sign<<63: source coefficient i lands at position dst,
	// negated when the exponent i*g wrapped past N (X^N = -1).
	coeff []uint64
	// ntt is the evaluation-domain gather: out[i] = in[ntt[i]]. In the
	// NTT domain the automorphism is a pure slot permutation (each
	// output slot evaluates the input at another 2N-th root), so no
	// signs appear.
	ntt []uint64
}

const autoSignBit = uint64(1) << 63

// automorphismTable returns (building and caching on first use) the
// permutation tables for Galois element g.
func (r *Ring) automorphismTable(g uint64) *autoTable {
	if g&1 == 0 {
		panic("ring: Galois element must be odd")
	}
	c := r.autos
	c.mu.RLock()
	tbl := c.tables[g]
	c.mu.RUnlock()
	if tbl != nil {
		return tbl
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if tbl = c.tables[g]; tbl != nil {
		return tbl
	}
	n := uint64(r.N)
	mask := 2*n - 1
	tbl = &autoTable{
		coeff: make([]uint64, n),
		ntt:   make([]uint64, n),
	}
	idx := uint64(0)
	for i := uint64(0); i < n; i++ {
		if idx >= n {
			tbl.coeff[i] = (idx - n) | autoSignBit
		} else {
			tbl.coeff[i] = idx
		}
		idx = (idx + g) & mask
	}
	// Our forward NTT stores a(psi^{2·br(i)+1}) at position i (br =
	// bit-reversal over LogN bits). Evaluating phi_g(a)(X) = a(X^g) at
	// that root gives a(psi^e) with e = g·(2·br(i)+1) mod 2N, which the
	// input holds at position bitrev((e-1)/2).
	logN := uint(r.LogN)
	for i := uint64(0); i < n; i++ {
		e := (g * (2*(bits.Reverse64(i)>>(64-logN)) + 1)) & mask
		tbl.ntt[i] = bits.Reverse64((e-1)>>1) >> (64 - logN)
	}
	c.tables[g] = tbl
	return tbl
}

// nttTable holds per-modulus NTT precomputations.
type nttTable struct {
	mod nt.Modulus
	// psiRev[i] = psi^{bitrev(i)}, psi a 2N-th primitive root; Shoup
	// companions for the hot loop.
	psiRev         []uint64
	psiRevShoup    []uint64
	psiInvRev      []uint64
	psiInvRevShoup []uint64
	nInv           uint64
	nInvShoup      uint64
	// nInvPsi = nInv·psiInvRev[1]: the inverse transform's last-stage
	// twiddle with the 1/N scaling folded in, so the final butterfly
	// pass doubles as the scaling pass.
	nInvPsi      uint64
	nInvPsiShoup uint64
}

// NewRing constructs the ring of degree 2^logN with the given moduli.
// Every modulus must be an NTT-friendly prime (q ≡ 1 mod 2N).
func NewRing(logN int, moduli []uint64) (*Ring, error) {
	if logN < 2 || logN > 17 {
		return nil, fmt.Errorf("ring: unsupported logN=%d", logN)
	}
	if len(moduli) == 0 {
		return nil, fmt.Errorf("ring: empty modulus chain")
	}
	n := 1 << uint(logN)
	r := &Ring{N: n, LogN: logN}
	seen := map[uint64]bool{}
	for _, q := range moduli {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		if q%(2*uint64(n)) != 1 {
			return nil, fmt.Errorf("ring: modulus %d is not 1 mod 2N", q)
		}
		if !nt.IsPrime(q) {
			return nil, fmt.Errorf("ring: modulus %d is not prime", q)
		}
		r.Moduli = append(r.Moduli, nt.NewModulus(q))
	}
	for _, m := range r.Moduli {
		tbl, err := newNTTTable(m, logN)
		if err != nil {
			return nil, err
		}
		r.tables = append(r.tables, tbl)
	}
	r.precomputeCRT()
	r.autos = &autoCache{tables: map[uint64]*autoTable{}}
	return r, nil
}

func (r *Ring) precomputeCRT() {
	r.bigQ = big.NewInt(1)
	//lint:ignore-choco bigintloop one-time CRT setup precomputation
	for _, m := range r.Moduli {
		r.bigQ.Mul(r.bigQ, new(big.Int).SetUint64(m.Value))
	}
	r.halfQ = new(big.Int).Rsh(r.bigQ, 1)
	r.qiHat = make([]*big.Int, len(r.Moduli))
	r.qiHatInv = make([]uint64, len(r.Moduli))
	//lint:ignore-choco bigintloop one-time CRT setup precomputation
	for i, m := range r.Moduli {
		r.qiHat[i] = new(big.Int).Div(r.bigQ, new(big.Int).SetUint64(m.Value))
		rem := new(big.Int).Mod(r.qiHat[i], new(big.Int).SetUint64(m.Value)).Uint64()
		inv, ok := m.Inv(rem)
		if !ok {
			panic("ring: CRT basis moduli not pairwise coprime")
		}
		r.qiHatInv[i] = inv
	}
}

func newNTTTable(m nt.Modulus, logN int) (*nttTable, error) {
	n := uint64(1) << uint(logN)
	psi, err := nt.MinimalPrimitiveRootOfUnity(m.Value, 2*n)
	if err != nil {
		return nil, fmt.Errorf("ring: modulus %d: %w", m.Value, err)
	}
	psiInv, ok := m.Inv(psi)
	if !ok {
		return nil, fmt.Errorf("ring: psi not invertible mod %d", m.Value)
	}
	t := &nttTable{mod: m}
	t.psiRev = make([]uint64, n)
	t.psiRevShoup = make([]uint64, n)
	t.psiInvRev = make([]uint64, n)
	t.psiInvRevShoup = make([]uint64, n)
	powPsi := uint64(1)
	powPsiInv := uint64(1)
	for i := uint64(0); i < n; i++ {
		j := bits.Reverse64(i) >> uint(64-logN)
		t.psiRev[j] = powPsi
		t.psiInvRev[j] = powPsiInv
		powPsi = m.Mul(powPsi, psi)
		powPsiInv = m.Mul(powPsiInv, psiInv)
	}
	for i := range t.psiRev {
		t.psiRevShoup[i] = m.ShoupPrecomp(t.psiRev[i])
		t.psiInvRevShoup[i] = m.ShoupPrecomp(t.psiInvRev[i])
	}
	nInv, ok := m.Inv(n % m.Value)
	if !ok {
		return nil, fmt.Errorf("ring: N not invertible mod %d", m.Value)
	}
	t.nInv = nInv
	t.nInvShoup = m.ShoupPrecomp(nInv)
	t.nInvPsi = m.Mul(nInv, t.psiInvRev[1])
	t.nInvPsiShoup = m.ShoupPrecomp(t.nInvPsi)
	return t, nil
}

// Level returns the number of RNS residues.
func (r *Ring) Level() int { return len(r.Moduli) }

// ModulusBig returns (a copy of) the full modulus Q as a big integer.
func (r *Ring) ModulusBig() *big.Int { return new(big.Int).Set(r.bigQ) }

// ModulusBits returns ceil(log2 Q), the total coefficient modulus width.
func (r *Ring) ModulusBits() int { return r.bigQ.BitLen() }

// AtLevel returns a ring identical to r but truncated to the first
// level+1 moduli. It shares NTT tables with r.
func (r *Ring) AtLevel(level int) *Ring {
	if level < 0 || level >= len(r.Moduli) {
		panic("ring: level out of range")
	}
	sub := &Ring{
		N:      r.N,
		LogN:   r.LogN,
		Moduli: r.Moduli[:level+1],
		tables: r.tables[:level+1],
		autos:  r.autos,
	}
	sub.precomputeCRT()
	return sub
}

// Poly is an element of R_q stored as one residue row per modulus. The
// IsNTT flag records the current domain.
type Poly struct {
	Coeffs [][]uint64
	IsNTT  bool
}

// DeclareNTT marks p as NTT-domain without transforming it. It is the
// sanctioned escape hatch for constructions whose residue rows already
// hold evaluation-domain values: uniform randomness (identically
// distributed in either domain) and accumulator buffers about to be
// overwritten. All other code must change domains through NTT/INTT;
// the nttdomain analyzer in internal/lint flags direct IsNTT writes
// outside this package.
func (p *Poly) DeclareNTT() { p.IsNTT = true }

// DeclareCoeff marks p as coefficient-domain without transforming it.
// See DeclareNTT for when this is legitimate.
func (p *Poly) DeclareCoeff() { p.IsNTT = false }

// NewPoly allocates a zero polynomial for the ring.
func (r *Ring) NewPoly() *Poly {
	backing := make([]uint64, len(r.Moduli)*r.N)
	coeffs := make([][]uint64, len(r.Moduli))
	for i := range coeffs {
		coeffs[i], backing = backing[:r.N], backing[r.N:]
	}
	return &Poly{Coeffs: coeffs}
}

// GetPoly returns a zeroed coefficient-domain polynomial from the
// ring's scratch pool, falling back to a fresh allocation when the pool
// is empty. It exists because evaluator hot paths (key switching,
// rotation, tensor products) otherwise allocate multi-megabyte
// temporaries per call, and allocation pressure caps the speedup of the
// parallel execution layer. A poly obtained here and never returned is
// simply garbage-collected.
func (r *Ring) GetPoly() *Poly {
	if v := r.pool.Get(); v != nil {
		p := v.(*Poly)
		for i := range p.Coeffs {
			row := p.Coeffs[i]
			for j := range row {
				row[j] = 0
			}
		}
		p.IsNTT = false
		return p
	}
	return r.NewPoly()
}

// PutPoly recycles a scratch polynomial obtained from GetPoly. The
// caller must not retain any reference to p afterwards. Polys whose
// shape does not match the ring (e.g. built against a truncated
// AtLevel ring) are dropped rather than poisoning the pool.
func (r *Ring) PutPoly(p *Poly) {
	if p == nil || len(p.Coeffs) != len(r.Moduli) {
		return
	}
	for i := range p.Coeffs {
		if len(p.Coeffs[i]) != r.N {
			return
		}
	}
	r.pool.Put(p)
}

// CopyPoly returns a deep copy of p.
func (r *Ring) CopyPoly(p *Poly) *Poly {
	q := r.NewPoly()
	for i := range p.Coeffs {
		copy(q.Coeffs[i], p.Coeffs[i])
	}
	q.IsNTT = p.IsNTT
	return q
}

// Copy copies src into dst.
func (r *Ring) Copy(dst, src *Poly) {
	for i := range src.Coeffs {
		copy(dst.Coeffs[i], src.Coeffs[i])
	}
	dst.IsNTT = src.IsNTT
}

// Zero clears p in place.
func (r *Ring) Zero(p *Poly) {
	for i := range p.Coeffs {
		row := p.Coeffs[i]
		for j := range row {
			row[j] = 0
		}
	}
	p.IsNTT = false
}

// Equal reports whether a and b are identical (same domain, same
// residues).
func (r *Ring) Equal(a, b *Poly) bool {
	if a.IsNTT != b.IsNTT || len(a.Coeffs) != len(b.Coeffs) {
		return false
	}
	for i := range a.Coeffs {
		for j := range a.Coeffs[i] {
			if a.Coeffs[i][j] != b.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// NTT transforms p in place to the evaluation domain.
func (r *Ring) NTT(p *Poly) {
	if debugEnabled {
		r.debugCheck("NTT", p)
	}
	if p.IsNTT {
		panic("ring: NTT on a polynomial already in NTT domain")
	}
	r.parRows(len(p.Coeffs), parMinTransform, func(i int) {
		nttForward(r.tables[i], p.Coeffs[i])
	})
	p.IsNTT = true
}

// INTT transforms p in place back to the coefficient domain.
func (r *Ring) INTT(p *Poly) {
	if debugEnabled {
		r.debugCheck("INTT", p)
	}
	if !p.IsNTT {
		panic("ring: INTT on a polynomial already in coefficient domain")
	}
	r.parRows(len(p.Coeffs), parMinTransform, func(i int) {
		nttInverse(r.tables[i], p.Coeffs[i])
	})
	p.IsNTT = false
}

// NTTForwardRow transforms a single RNS residue row in place (forward,
// coefficient → evaluation). It exposes the per-row kernel to fused
// per-residue pipelines — client encryption fans residue rows across
// workers, running sample → NTT → dyadic mul-add → INTT on each row
// without whole-polynomial domain flips in between. The caller owns the
// enclosing Poly's IsNTT bookkeeping (DeclareNTT / DeclareCoeff).
func (r *Ring) NTTForwardRow(lvl int, row []uint64) {
	nttForward(r.tables[lvl], row)
}

// NTTInverseRow transforms a single RNS residue row in place (inverse,
// evaluation → coefficient). See NTTForwardRow.
func (r *Ring) NTTInverseRow(lvl int, row []uint64) {
	nttInverse(r.tables[lvl], row)
}

// nttForward is the in-place Cooley-Tukey negacyclic NTT with merged
// psi powers (Longa-Naehrig). Output is in bit-reversed evaluation
// order, which is self-consistent for dyadic products.
func nttForward(tbl *nttTable, a []uint64) {
	if nttForwardVec(tbl, a) {
		return
	}
	mod := tbl.mod
	n := len(a)
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * t
			w := tbl.psiRev[m+i]
			ws := tbl.psiRevShoup[m+i]
			// Split the butterfly's two lanes into equal-length slices
			// so the compiler can prove both indexings in range and
			// drop the per-iteration bounds checks.
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t]
			y = y[:len(x)]
			for k := range x {
				u := x[k]
				v := mod.MulShoup(y[k], w, ws)
				x[k] = mod.Add(u, v)
				y[k] = mod.Sub(u, v)
			}
		}
	}
}

// nttInverse is the in-place Gentleman-Sande inverse transform with
// two exact accelerations:
//
//   - Lazy reduction (Harvey): intermediate lanes live in [0, 2q)
//     instead of [0, q), so each butterfly drops two conditional
//     corrections — the sum lane reduces against 2q and the twiddle
//     lane uses MulShoupLazy on u−v+2q ∈ [0, 4q), which stays exact
//     for q < 2^62.
//   - Folded 1/N scaling (Longa-Naehrig): the final stage has a single
//     twiddle, so scaling its two output lanes by nInv and
//     nInv·psiInvRev[1] (precomputed) replaces the separate scaling
//     sweep. The final stage's full MulShoup also restores canonical
//     [0, q) residues, so the transform's output is bit-identical to
//     the eager implementation.
func nttInverse(tbl *nttTable, a []uint64) {
	if nttInverseVec(tbl, a) {
		return
	}
	mod := tbl.mod
	twoQ := mod.Value << 1
	n := len(a)
	t := 1
	for m := n; m > 2; m >>= 1 {
		j1 := 0
		h := m >> 1
		for i := 0; i < h; i++ {
			w := tbl.psiInvRev[h+i]
			ws := tbl.psiInvRevShoup[h+i]
			// Equal-length lane slices let the compiler drop the
			// per-iteration bounds checks.
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t]
			y = y[:len(x)]
			for k := range x {
				u := x[k]
				v := y[k]
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				x[k] = s
				y[k] = mod.MulShoupLazy(u+twoQ-v, w, ws)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	half := n >> 1
	x := a[:half:half]
	y := a[half:]
	y = y[:len(x)]
	for k := range x {
		u := x[k]
		v := y[k]
		x[k] = mod.MulShoup(u+v, tbl.nInv, tbl.nInvShoup)
		y[k] = mod.MulShoup(u+twoQ-v, tbl.nInvPsi, tbl.nInvPsiShoup)
	}
}

// Add sets out = a + b.
func (r *Ring) Add(a, b, out *Poly) {
	if debugEnabled {
		r.debugCheck("Add", a, b)
	}
	r.requireSameDomain(a, b)
	r.parRows(len(out.Coeffs), parMinElementary, func(i int) {
		m := r.Moduli[i]
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = m.Add(ra[j], rb[j])
		}
	})
	out.IsNTT = a.IsNTT
}

// Sub sets out = a - b.
func (r *Ring) Sub(a, b, out *Poly) {
	if debugEnabled {
		r.debugCheck("Sub", a, b)
	}
	r.requireSameDomain(a, b)
	r.parRows(len(out.Coeffs), parMinElementary, func(i int) {
		m := r.Moduli[i]
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = m.Sub(ra[j], rb[j])
		}
	})
	out.IsNTT = a.IsNTT
}

// Neg sets out = -a.
func (r *Ring) Neg(a, out *Poly) {
	if debugEnabled {
		r.debugCheck("Neg", a)
	}
	r.parRows(len(out.Coeffs), parMinElementary, func(i int) {
		m := r.Moduli[i]
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = m.Neg(ra[j])
		}
	})
	out.IsNTT = a.IsNTT
}

// MulCoeffs sets out = a ⊙ b (dyadic product). Both operands must be in
// the NTT domain, where the dyadic product realizes negacyclic
// convolution.
func (r *Ring) MulCoeffs(a, b, out *Poly) {
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffs requires NTT-domain operands")
	}
	if debugEnabled {
		r.debugCheck("MulCoeffs", a, b)
	}
	r.parRows(len(out.Coeffs), parMinCoeffwise, func(i int) {
		m := r.Moduli[i]
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		if mulModVector(m, ra, rb, ro) {
			return
		}
		for j := range ro {
			ro[j] = m.Mul(ra[j], rb[j])
		}
	})
	out.IsNTT = true
}

// MulCoeffsAdd sets out += a ⊙ b, all in NTT domain.
func (r *Ring) MulCoeffsAdd(a, b, out *Poly) {
	if !a.IsNTT || !b.IsNTT || !out.IsNTT {
		panic("ring: MulCoeffsAdd requires NTT-domain operands")
	}
	if debugEnabled {
		r.debugCheck("MulCoeffsAdd", a, b, out)
	}
	r.parRows(len(out.Coeffs), parMinCoeffwise, func(i int) {
		m := r.Moduli[i]
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		if mulModAddVector(m, ra, rb, ro) {
			return
		}
		for j := range ro {
			ro[j] = m.Add(ro[j], m.Mul(ra[j], rb[j]))
		}
	})
}

// ShoupPolyPrecomp returns per-coefficient MulShoup companions for a
// fixed operand polynomial (one row per residue). Intended for
// operands that are multiplied many times against varying inputs —
// key-switching key polynomials above all — where the precomputation
// turns every inner-product multiply from a full Barrett reduction
// into a Shoup one.
func (r *Ring) ShoupPolyPrecomp(p *Poly) [][]uint64 {
	out := make([][]uint64, len(p.Coeffs))
	r.parRows(len(p.Coeffs), parMinCoeffwise, func(i int) {
		m := r.Moduli[i]
		row := make([]uint64, len(p.Coeffs[i]))
		for j, w := range p.Coeffs[i] {
			row[j] = m.ShoupPrecomp(w)
		}
		out[i] = row
	})
	return out
}

// MulCoeffsShoupAdd sets out += a ⊙ b, all in NTT domain, where bShoup
// holds b's companions from ShoupPolyPrecomp. Bit-identical to
// MulCoeffsAdd (Shoup multiplication is exact), but roughly halves the
// per-coefficient cost for the fixed operand b.
func (r *Ring) MulCoeffsShoupAdd(a, b *Poly, bShoup [][]uint64, out *Poly) {
	if !a.IsNTT || !b.IsNTT || !out.IsNTT {
		panic("ring: MulCoeffsShoupAdd requires NTT-domain operands")
	}
	if debugEnabled {
		r.debugCheck("MulCoeffsShoupAdd", a, b, out)
	}
	r.parRows(len(out.Coeffs), parMinCoeffwise, func(i int) {
		m := r.Moduli[i]
		ro := out.Coeffs[i]
		ra := a.Coeffs[i][:len(ro)]
		rb := b.Coeffs[i][:len(ro)]
		rs := bShoup[i][:len(ro)]
		if mulShoupAddVector(m, ra, rb, rs, ro) {
			return
		}
		for j := range ro {
			ro[j] = m.Add(ro[j], m.MulShoup(ra[j], rb[j], rs[j]))
		}
	})
}

// MulCoeffsShoupAdd2 fuses two accumulations that share the left
// operand — out0 += a ⊙ b0, out1 += a ⊙ b1 — into one sweep, loading
// each coefficient of a once. This is the key-switching inner-product
// shape: one digit multiplied against both halves (B, A) of a
// switching key. Bit-identical to two MulCoeffsShoupAdd calls.
func (r *Ring) MulCoeffsShoupAdd2(a, b0 *Poly, b0Shoup [][]uint64, out0 *Poly, b1 *Poly, b1Shoup [][]uint64, out1 *Poly) {
	if !a.IsNTT || !b0.IsNTT || !b1.IsNTT || !out0.IsNTT || !out1.IsNTT {
		panic("ring: MulCoeffsShoupAdd2 requires NTT-domain operands")
	}
	if debugEnabled {
		r.debugCheck("MulCoeffsShoupAdd2", a, b0, b1, out0, out1)
	}
	r.parRows(len(out0.Coeffs), parMinCoeffwise, func(i int) {
		m := r.Moduli[i]
		ro0 := out0.Coeffs[i]
		ro1 := out1.Coeffs[i][:len(ro0)]
		ra := a.Coeffs[i][:len(ro0)]
		rb0 := b0.Coeffs[i][:len(ro0)]
		rs0 := b0Shoup[i][:len(ro0)]
		rb1 := b1.Coeffs[i][:len(ro0)]
		rs1 := b1Shoup[i][:len(ro0)]
		if mulShoupAdd2Vector(m, ra, rb0, rs0, ro0, rb1, rs1, ro1) {
			return
		}
		for j := range ro0 {
			x := ra[j]
			ro0[j] = m.Add(ro0[j], m.MulShoup(x, rb0[j], rs0[j]))
			ro1[j] = m.Add(ro1[j], m.MulShoup(x, rb1[j], rs1[j]))
		}
	})
}

// AutomorphismNTTMulShoupAdd2 fuses the NTT-domain automorphism of a
// into the dual accumulation: out0 += φ_g(a) ⊙ b0, out1 += φ_g(a) ⊙ b1,
// reading a through the cached slot permutation instead of
// materializing φ_g(a) first. This is the triple-hoisted key-switch
// inner product — the per-element automorphism costs zero extra memory
// passes and no scratch polynomial. Bit-identical to AutomorphismNTT
// followed by MulCoeffsShoupAdd2: both compute
// out[j] += a[perm[j]]·b[j] in the same exact modular arithmetic. g
// must be odd; a must not alias out0 or out1.
func (r *Ring) AutomorphismNTTMulShoupAdd2(a *Poly, g uint64, b0 *Poly, b0Shoup [][]uint64, out0 *Poly, b1 *Poly, b1Shoup [][]uint64, out1 *Poly) {
	if !a.IsNTT || !b0.IsNTT || !b1.IsNTT || !out0.IsNTT || !out1.IsNTT {
		panic("ring: AutomorphismNTTMulShoupAdd2 requires NTT-domain operands")
	}
	if debugEnabled {
		r.debugCheck("AutomorphismNTTMulShoupAdd2", a, b0, b1, out0, out1)
	}
	tbl := r.automorphismTable(g)
	perm := tbl.ntt
	r.parRows(len(out0.Coeffs), parMinCoeffwise, func(i int) {
		m := r.Moduli[i]
		ro0 := out0.Coeffs[i]
		ro1 := out1.Coeffs[i][:len(ro0)]
		ra := a.Coeffs[i]
		rb0 := b0.Coeffs[i][:len(ro0)]
		rs0 := b0Shoup[i][:len(ro0)]
		rb1 := b1.Coeffs[i][:len(ro0)]
		rs1 := b1Shoup[i][:len(ro0)]
		for j := range ro0 {
			x := ra[perm[j]]
			ro0[j] = m.Add(ro0[j], m.MulShoup(x, rb0[j], rs0[j]))
			ro1[j] = m.Add(ro1[j], m.MulShoup(x, rb1[j], rs1[j]))
		}
	})
}

// MulScalar sets out = a * c for a scalar c (already reduced per
// modulus by the caller or arbitrary; it is reduced here).
func (r *Ring) MulScalar(a *Poly, c uint64, out *Poly) {
	if debugEnabled {
		r.debugCheck("MulScalar", a)
	}
	r.parRows(len(out.Coeffs), parMinCoeffwise, func(i int) {
		m := r.Moduli[i]
		cc := m.Reduce(c)
		cs := m.ShoupPrecomp(cc)
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = m.MulShoup(ra[j], cc, cs)
		}
	})
	out.IsNTT = a.IsNTT
}

// MulScalarBig sets out = a * c for a big scalar, reduced per modulus.
func (r *Ring) MulScalarBig(a *Poly, c *big.Int, out *Poly) {
	if debugEnabled {
		r.debugCheck("MulScalarBig", a)
	}
	r.parRows(len(out.Coeffs), parMinCoeffwise, func(i int) {
		m := r.Moduli[i]
		cc := new(big.Int).Mod(c, new(big.Int).SetUint64(m.Value)).Uint64()
		cs := m.ShoupPrecomp(cc)
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = m.MulShoup(ra[j], cc, cs)
		}
	})
	out.IsNTT = a.IsNTT
}

func (r *Ring) requireSameDomain(a, b *Poly) {
	if a.IsNTT != b.IsNTT {
		panic("ring: mixed-domain operands")
	}
}

// GaloisElementForRotation returns the Galois element g = 3^steps mod 2N
// (or its inverse for negative steps) whose automorphism realizes a
// rotation of the batched plaintext rows by steps slots.
func (r *Ring) GaloisElementForRotation(steps int) uint64 {
	twoN := uint64(2 * r.N)
	g := uint64(1)
	gen := uint64(3)
	s := steps
	if s < 0 {
		// 3^-1 mod 2N exists since 3 is odd; use exponent (N/2 - |s|)
		// as the group of row rotations has order N/2.
		s = s % (r.N / 2)
		s += r.N / 2
	}
	s = s % (r.N / 2)
	mod2N := func(x uint64) uint64 { return x & (twoN - 1) }
	for i := 0; i < s; i++ {
		g = mod2N(g * gen)
	}
	return g
}

// GaloisElementRowSwap returns the Galois element 2N-1 whose
// automorphism swaps the two rows of the batched plaintext matrix
// (BFV) or conjugates the slots (CKKS).
func (r *Ring) GaloisElementRowSwap() uint64 { return uint64(2*r.N - 1) }

// Automorphism applies X -> X^g to a coefficient-domain polynomial:
// out[i*g mod 2N] = ±a[i] with sign flip when the exponent wraps past N.
// g must be odd. a and out must not alias. The index/sign permutation is
// cached per Galois element.
func (r *Ring) Automorphism(a *Poly, g uint64, out *Poly) {
	if a.IsNTT {
		panic("ring: Automorphism requires coefficient domain")
	}
	if debugEnabled {
		r.debugCheck("Automorphism", a)
	}
	tbl := r.automorphismTable(g)
	perm := tbl.coeff
	r.parRows(len(out.Coeffs), parMinTransform, func(lvl int) {
		m := r.Moduli[lvl]
		ra, ro := a.Coeffs[lvl], out.Coeffs[lvl]
		for i, e := range perm {
			if e&autoSignBit != 0 {
				ro[e&^autoSignBit] = m.Neg(ra[i])
			} else {
				ro[e] = ra[i]
			}
		}
	})
	out.IsNTT = false
}

// AutomorphismNTT applies X -> X^g to an NTT-domain polynomial by
// permuting evaluation slots directly: no transform, no sign fixups,
// one gather per residue row. This is what makes hoisted rotation pay
// off — the decomposed digits stay in the evaluation domain across the
// whole rotation batch. g must be odd. a and out must not alias.
func (r *Ring) AutomorphismNTT(a *Poly, g uint64, out *Poly) {
	if !a.IsNTT {
		panic("ring: AutomorphismNTT requires NTT domain")
	}
	if debugEnabled {
		r.debugCheck("AutomorphismNTT", a)
	}
	tbl := r.automorphismTable(g)
	perm := tbl.ntt
	r.parRows(len(out.Coeffs), parMinTransform, func(lvl int) {
		ra, ro := a.Coeffs[lvl], out.Coeffs[lvl]
		for i, src := range perm {
			ro[i] = ra[src]
		}
	})
	out.IsNTT = true
}

// PolyToBigintCentered writes the centered CRT composition of each
// coefficient of p (coefficient domain) into out, which must have
// length N. Values lie in (-Q/2, Q/2].
func (r *Ring) PolyToBigintCentered(p *Poly, out []*big.Int) {
	if p.IsNTT {
		panic("ring: composition requires coefficient domain")
	}
	if debugEnabled {
		r.debugCheck("PolyToBigintCentered", p)
	}
	tmp := new(big.Int)
	//lint:ignore-choco bigintloop full CRT composition is the correctness oracle, not the decrypt fast path
	for j := 0; j < r.N; j++ {
		acc := out[j]
		if acc == nil {
			acc = new(big.Int)
			out[j] = acc
		}
		acc.SetUint64(0)
		for i := range p.Coeffs {
			m := r.Moduli[i]
			// term = ((c_ij * qiHatInv_i) mod q_i) * qiHat_i
			v := m.Mul(p.Coeffs[i][j], r.qiHatInv[i])
			tmp.SetUint64(v)
			tmp.Mul(tmp, r.qiHat[i])
			acc.Add(acc, tmp)
		}
		acc.Mod(acc, r.bigQ)
		if acc.Cmp(r.halfQ) > 0 {
			acc.Sub(acc, r.bigQ)
		}
	}
}

// CoeffBigintCentered composes the single coefficient j of p
// (coefficient domain) into its centered representative in
// (-Q/2, Q/2], writing it to acc. It is the per-coefficient form of
// PolyToBigintCentered, used by the RNS decryptor's exact-rounding
// fallback: only coefficients whose fixed-point fraction lands inside
// the ambiguity band pay for a big.Int composition.
func (r *Ring) CoeffBigintCentered(p *Poly, j int, acc *big.Int) {
	if p.IsNTT {
		panic("ring: composition requires coefficient domain")
	}
	tmp := new(big.Int)
	acc.SetUint64(0)
	//lint:ignore-choco bigintloop per-coefficient CRT oracle: the RNS fast path calls this only for ambiguous coefficients
	for i := range p.Coeffs {
		m := r.Moduli[i]
		v := m.Mul(p.Coeffs[i][j], r.qiHatInv[i])
		tmp.SetUint64(v)
		tmp.Mul(tmp, r.qiHat[i])
		acc.Add(acc, tmp)
	}
	acc.Mod(acc, r.bigQ)
	if acc.Cmp(r.halfQ) > 0 {
		acc.Sub(acc, r.bigQ)
	}
}

// SetCoeffsBigint decomposes arbitrary big integers (possibly negative)
// into the RNS residues of p (coefficient domain).
func (r *Ring) SetCoeffsBigint(values []*big.Int, p *Poly) {
	tmp := new(big.Int)
	//lint:ignore-choco bigintloop arbitrary-precision input decomposition, a test/setup entry point
	for i := range p.Coeffs {
		m := r.Moduli[i]
		bq := new(big.Int).SetUint64(m.Value)
		row := p.Coeffs[i]
		for j := range row {
			if j < len(values) && values[j] != nil {
				tmp.Mod(values[j], bq)
				row[j] = tmp.Uint64()
			} else {
				row[j] = 0
			}
		}
	}
	p.IsNTT = false
}

// SetCoeffsUint64 sets the polynomial from small unsigned coefficients,
// reduced per modulus.
func (r *Ring) SetCoeffsUint64(values []uint64, p *Poly) {
	for i := range p.Coeffs {
		m := r.Moduli[i]
		row := p.Coeffs[i]
		for j := range row {
			if j < len(values) {
				row[j] = m.Reduce(values[j])
			} else {
				row[j] = 0
			}
		}
	}
	p.IsNTT = false
}

// SetCoeffsInt64 sets the polynomial from small signed coefficients.
func (r *Ring) SetCoeffsInt64(values []int64, p *Poly) {
	for i := range p.Coeffs {
		m := r.Moduli[i]
		row := p.Coeffs[i]
		for j := range row {
			if j < len(values) {
				v := values[j]
				if v >= 0 {
					row[j] = m.Reduce(uint64(v))
				} else {
					row[j] = m.Neg(m.Reduce(uint64(-v)))
				}
			} else {
				row[j] = 0
			}
		}
	}
	p.IsNTT = false
}

// InfNormBig returns the centered infinity norm of p as a big integer.
func (r *Ring) InfNormBig(p *Poly) *big.Int {
	vals := make([]*big.Int, r.N)
	r.PolyToBigintCentered(p, vals)
	max := new(big.Int)
	abs := new(big.Int)
	//lint:ignore-choco bigintloop exact noise-norm diagnostic, not an online path
	for _, v := range vals {
		abs.Abs(v)
		if abs.Cmp(max) > 0 {
			max.Set(abs)
		}
	}
	return max
}
