//go:build amd64 && !purego

// AVX2 kernels for the ring hot loops: NTT butterfly stage sweeps
// (forward eager, inverse Harvey-lazy) and the fused dyadic
// multiply-accumulate forms. Every kernel reproduces the scalar
// arithmetic in internal/nt exactly — same quotient estimates, same
// conditional-subtraction ladders — so vector and scalar outputs are
// bit-identical (see kernels_amd64.go for the per-kernel argument).
//
// AVX2 has no 64×64 multiply, so products are assembled from four
// VPMULUDQ 32×32 partials (MULHI) or three (MULLO, where the high
// cross terms drop out mod 2^64). All residues and lazy intermediates
// stay below 2^62 (q < 2^61), which keeps every value clear of the
// sign bit and makes the signed VPCMPGTQ compare-mask ladders exact.

#include "textflag.h"

// DST = floor(A*B / 2^64). MASK holds 0x00000000FFFFFFFF lanes.
// Clobbers T0-T3. DST must differ from A, B. High dwords are fed to
// VPMULUDQ via VPSHUFD (port 5) rather than VPSRLQ so operand prep
// stays off the multiplier ports.
#define MULHI(A, B, MASK, T0, T1, T2, T3, DST) \
	VPSHUFD $0xF5, A, T0 \
	VPSHUFD $0xF5, B, T1 \
	VPMULUDQ B, A, T2    \
	VPMULUDQ B, T0, T3   \
	VPMULUDQ T1, A, DST  \
	VPMULUDQ T1, T0, T0  \
	VPSRLQ  $32, T2, T2  \
	VPADDQ  T2, T3, T3   \
	VPSRLQ  $32, T3, T1  \
	VPADDQ  T1, T0, T0   \
	VPAND   MASK, T3, T3 \
	VPADDQ  T3, DST, DST \
	VPSRLQ  $32, DST, DST \
	VPADDQ  T0, DST, DST

// DST = A*B mod 2^64. Clobbers T0, T1. DST may equal A or B.
#define MULLO(A, B, T0, T1, DST) \
	VPSHUFD $0xF5, A, T0 \
	VPMULUDQ B, T0, T0   \
	VPSHUFD $0xF5, B, T1 \
	VPMULUDQ A, T1, T1   \
	VPADDQ  T1, T0, T0   \
	VPSLLQ  $32, T0, T0  \
	VPMULUDQ B, A, DST   \
	VPADDQ  T0, DST, DST

// Materialize the MULHI dword mask without touching general registers.
#define LOADMASK(R) \
	VPCMPEQD R, R, R \
	VPSRLQ  $32, R, R

// if R >= Q { R -= Q }, for R, Q < 2^63. Clobbers T0, T1.
#define CSUB(R, Q, T0, T1) \
	VPCMPGTQ R, Q, T0 \ // T0 = (Q > R)
	VPANDN  Q, T0, T1 \ // Q where R >= Q, else 0
	VPSUBQ  T1, R, R

// R = A*W mod q (canonical), WS = ShoupPrecomp(W), A < 2^62.
// Exactly nt.MulShoup: qhat = hi(A*WS); R = A*W - qhat*q; csub q.
#define MULSHOUP(A, W, WS, Q, MASK, T0, T1, T2, T3, T4, R) \
	MULHI(A, WS, MASK, T0, T1, T2, T3, T4) \
	MULLO(A, W, T0, T1, R)                 \
	MULLO(T4, Q, T0, T1, T2)               \
	VPSUBQ T2, R, R                        \
	CSUB(R, Q, T0, T1)

// R = A*W mod q in [0, 2q): nt.MulShoupLazy (no final subtraction).
#define MULSHOUPLZ(A, W, WS, Q, MASK, T0, T1, T2, T3, T4, R) \
	MULHI(A, WS, MASK, T0, T1, T2, T3, T4) \
	MULLO(A, W, T0, T1, R)                 \
	MULLO(T4, Q, T0, T1, T2)               \
	VPSUBQ T2, R, R

// Forward butterfly on u=Y0, v0=Y1 with w=Y14, ws=Y13, q=Y15,
// mask=Y11: leaves x' = (u+v) mod q in Y1 and y' = (u-v) mod q in Y3.
#define FWDBFLY \
	MULSHOUP(Y1, Y14, Y13, Y15, Y11, Y2, Y3, Y4, Y5, Y6, Y7) \
	VPADDQ  Y7, Y0, Y1   \ // u + v
	CSUB(Y1, Y15, Y2, Y3) \
	VPCMPGTQ Y0, Y7, Y2  \ // v > u: borrow mask
	VPAND   Y15, Y2, Y2  \
	VPSUBQ  Y7, Y0, Y3   \
	VPADDQ  Y2, Y3, Y3

// Inverse lazy butterfly on u=Y0, v=Y1 with w=Y14, ws=Y13, q=Y15,
// 2q=Y12, mask=Y11: leaves x' = (u+v) mod 2q in Y2 and y' =
// lazy((u+2q-v)*w) in Y1. Inputs < 2q, outputs < 2q (Harvey).
#define INVBFLY \
	VPADDQ  Y1, Y0, Y2    \ // u + v < 4q
	CSUB(Y2, Y12, Y3, Y4)  \
	VPADDQ  Y12, Y0, Y5   \
	VPSUBQ  Y1, Y5, Y5    \ // u + 2q - v < 4q
	MULSHOUPLZ(Y5, Y14, Y13, Y15, Y11, Y6, Y7, Y8, Y9, Y10, Y1)

// func nttFwdStageAVX2(p, psi, psiS *uint64, q uint64, m, t int)
// One forward Cooley-Tukey stage with lane count t >= 4 (multiple of
// 4): m groups, group i twiddled by psi[i] (caller passes &psiRev[m]).
TEXT ·nttFwdStageAVX2(SB), NOSPLIT, $0-48
	MOVQ p+0(FP), SI
	MOVQ psi+8(FP), R8
	MOVQ psiS+16(FP), R9
	VPBROADCASTQ q+24(FP), Y15
	LOADMASK(Y11)
	MOVQ m+32(FP), R10
	MOVQ t+40(FP), R11
	MOVQ R11, R14
	SHLQ $3, R14          // t*8: x→y lane offset
	MOVQ R14, R13
	SHLQ $1, R13          // 2*t*8: group stride
	SHRQ $2, R11          // butterflies per group / 4
	MOVQ SI, DX

fwdOuter:
	VPBROADCASTQ (R8), Y14
	VPBROADCASTQ (R9), Y13
	ADDQ $8, R8
	ADDQ $8, R9
	MOVQ DX, BX
	LEAQ (DX)(R14*1), R12
	MOVQ R11, CX

fwdInner:
	VMOVDQU (BX), Y0
	VMOVDQU (R12), Y1
	FWDBFLY
	VMOVDQU Y1, (BX)
	VMOVDQU Y3, (R12)
	ADDQ $32, BX
	ADDQ $32, R12
	DECQ CX
	JNZ  fwdInner

	ADDQ R13, DX
	DECQ R10
	JNZ  fwdOuter
	VZEROUPPER
	RET

// func nttFwdT2AVX2(p, psi, psiS *uint64, q uint64, m int)
// Forward stage with t=2: memory holds [x0 x1 y0 y1] per group; two
// groups (two ymm) per iteration, deinterleaved with VPERM2I128.
// Twiddles are pair-broadcast with VPERMQ $0x50 from a contiguous
// 4-word load (the table extends past the 2 words consumed).
TEXT ·nttFwdT2AVX2(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), SI
	MOVQ psi+8(FP), R8
	MOVQ psiS+16(FP), R9
	VPBROADCASTQ q+24(FP), Y15
	LOADMASK(Y11)
	MOVQ m+32(FP), CX
	SHRQ $1, CX

fwdT2Loop:
	VMOVDQU (R8), Y2
	VPERMQ  $0x50, Y2, Y14 // [w0 w0 w1 w1]
	VMOVDQU (R9), Y2
	VPERMQ  $0x50, Y2, Y13
	VMOVDQU (SI), Y4       // [x0 x1 y0 y1]
	VMOVDQU 32(SI), Y5
	VPERM2I128 $0x20, Y5, Y4, Y0 // u = [x0 x1 x0' x1']
	VPERM2I128 $0x31, Y5, Y4, Y1 // v
	FWDBFLY
	VPERM2I128 $0x20, Y3, Y1, Y4
	VPERM2I128 $0x31, Y3, Y1, Y5
	VMOVDQU Y4, (SI)
	VMOVDQU Y5, 32(SI)
	ADDQ $64, SI
	ADDQ $16, R8
	ADDQ $16, R9
	DECQ CX
	JNZ  fwdT2Loop
	VZEROUPPER
	RET

// func nttFwdT1AVX2(p, psi, psiS *uint64, q uint64, m int)
// Forward stage with t=1: memory holds [x y] pairs; four groups per
// iteration, split into even/odd lanes with VPUNPCK[LH]QDQ. Twiddles
// load contiguously and are reordered to the unpacked lane order
// [w0 w2 w1 w3] with VPERMQ $0xD8.
TEXT ·nttFwdT1AVX2(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), SI
	MOVQ psi+8(FP), R8
	MOVQ psiS+16(FP), R9
	VPBROADCASTQ q+24(FP), Y15
	LOADMASK(Y11)
	MOVQ m+32(FP), CX
	SHRQ $2, CX

fwdT1Loop:
	VMOVDQU (R8), Y2
	VPERMQ  $0xD8, Y2, Y14
	VMOVDQU (R9), Y2
	VPERMQ  $0xD8, Y2, Y13
	VMOVDQU (SI), Y4       // [x0 y0 x1 y1]
	VMOVDQU 32(SI), Y5     // [x2 y2 x3 y3]
	VPUNPCKLQDQ Y5, Y4, Y0 // u = [x0 x2 x1 x3]
	VPUNPCKHQDQ Y5, Y4, Y1 // v = [y0 y2 y1 y3]
	FWDBFLY
	VPUNPCKLQDQ Y3, Y1, Y4 // [x0' y0' x1' y1']
	VPUNPCKHQDQ Y3, Y1, Y5
	VMOVDQU Y4, (SI)
	VMOVDQU Y5, 32(SI)
	ADDQ $64, SI
	ADDQ $32, R8
	ADDQ $32, R9
	DECQ CX
	JNZ  fwdT1Loop
	VZEROUPPER
	RET

// func nttInvStageAVX2(p, psi, psiS *uint64, q uint64, h, t int)
// One inverse Gentleman-Sande stage with t >= 4 (multiple of 4): h
// groups, group i twiddled by psi[i] (caller passes &psiInvRev[h]).
// Lanes stay in [0, 2q) (Harvey lazy reduction).
TEXT ·nttInvStageAVX2(SB), NOSPLIT, $0-48
	MOVQ p+0(FP), SI
	MOVQ psi+8(FP), R8
	MOVQ psiS+16(FP), R9
	VPBROADCASTQ q+24(FP), Y15
	VPADDQ Y15, Y15, Y12  // 2q
	LOADMASK(Y11)
	MOVQ h+32(FP), R10
	MOVQ t+40(FP), R11
	MOVQ R11, R14
	SHLQ $3, R14
	MOVQ R14, R13
	SHLQ $1, R13
	SHRQ $2, R11
	MOVQ SI, DX

invOuter:
	VPBROADCASTQ (R8), Y14
	VPBROADCASTQ (R9), Y13
	ADDQ $8, R8
	ADDQ $8, R9
	MOVQ DX, BX
	LEAQ (DX)(R14*1), R15
	MOVQ R11, CX

invInner:
	VMOVDQU (BX), Y0
	VMOVDQU (R15), Y1
	INVBFLY
	VMOVDQU Y2, (BX)
	VMOVDQU Y1, (R15)
	ADDQ $32, BX
	ADDQ $32, R15
	DECQ CX
	JNZ  invInner

	ADDQ R13, DX
	DECQ R10
	JNZ  invOuter
	VZEROUPPER
	RET

// func nttInvT2AVX2(p, psi, psiS *uint64, q uint64, h int)
// Inverse stage with t=2 (see nttFwdT2AVX2 for the lane shuffling).
TEXT ·nttInvT2AVX2(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), SI
	MOVQ psi+8(FP), R8
	MOVQ psiS+16(FP), R9
	VPBROADCASTQ q+24(FP), Y15
	VPADDQ Y15, Y15, Y12
	LOADMASK(Y11)
	MOVQ h+32(FP), CX
	SHRQ $1, CX

invT2Loop:
	VMOVDQU (R8), Y2
	VPERMQ  $0x50, Y2, Y14
	VMOVDQU (R9), Y2
	VPERMQ  $0x50, Y2, Y13
	VMOVDQU (SI), Y4
	VMOVDQU 32(SI), Y5
	VPERM2I128 $0x20, Y5, Y4, Y0
	VPERM2I128 $0x31, Y5, Y4, Y1
	INVBFLY
	VPERM2I128 $0x20, Y1, Y2, Y4
	VPERM2I128 $0x31, Y1, Y2, Y5
	VMOVDQU Y4, (SI)
	VMOVDQU Y5, 32(SI)
	ADDQ $64, SI
	ADDQ $16, R8
	ADDQ $16, R9
	DECQ CX
	JNZ  invT2Loop
	VZEROUPPER
	RET

// func nttInvT1AVX2(p, psi, psiS *uint64, q uint64, h int)
// Inverse stage with t=1 (see nttFwdT1AVX2 for the lane shuffling).
TEXT ·nttInvT1AVX2(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), SI
	MOVQ psi+8(FP), R8
	MOVQ psiS+16(FP), R9
	VPBROADCASTQ q+24(FP), Y15
	VPADDQ Y15, Y15, Y12
	LOADMASK(Y11)
	MOVQ h+32(FP), CX
	SHRQ $2, CX

invT1Loop:
	VMOVDQU (R8), Y2
	VPERMQ  $0xD8, Y2, Y14
	VMOVDQU (R9), Y2
	VPERMQ  $0xD8, Y2, Y13
	VMOVDQU (SI), Y4
	VMOVDQU 32(SI), Y5
	VPUNPCKLQDQ Y5, Y4, Y0
	VPUNPCKHQDQ Y5, Y4, Y1
	INVBFLY
	VPUNPCKLQDQ Y1, Y2, Y4
	VPUNPCKHQDQ Y1, Y2, Y5
	VMOVDQU Y4, (SI)
	VMOVDQU Y5, 32(SI)
	ADDQ $64, SI
	ADDQ $32, R8
	ADDQ $32, R9
	DECQ CX
	JNZ  invT1Loop
	VZEROUPPER
	RET

// func nttInvFinalAVX2(p *uint64, q, nInv, nInvS, nInvPsi, nInvPsiS uint64, half int)
// Final inverse half-stage with the 1/N scaling folded into the two
// twiddles (Longa-Naehrig): x' = (u+v)*nInv, y' = (u+2q-v)*nInvPsi,
// both full MulShoup so the output is canonical [0, q).
TEXT ·nttInvFinalAVX2(SB), NOSPLIT, $0-56
	MOVQ p+0(FP), SI
	VPBROADCASTQ q+8(FP), Y15
	VPADDQ Y15, Y15, Y12
	VPBROADCASTQ nInv+16(FP), Y14
	VPBROADCASTQ nInvS+24(FP), Y13
	VPBROADCASTQ nInvPsi+32(FP), Y11
	VPBROADCASTQ nInvPsiS+40(FP), Y10
	LOADMASK(Y9)
	MOVQ half+48(FP), CX
	MOVQ CX, R14
	SHLQ $3, R14
	LEAQ (SI)(R14*1), R12
	SHRQ $2, CX

invFinLoop:
	VMOVDQU (SI), Y0
	VMOVDQU (R12), Y1
	VPADDQ  Y1, Y0, Y2     // u + v < 4q
	VPADDQ  Y12, Y0, Y3
	VPSUBQ  Y1, Y3, Y3     // u + 2q - v < 4q
	MULSHOUP(Y2, Y14, Y13, Y15, Y9, Y4, Y5, Y6, Y7, Y8, Y0)
	MULSHOUP(Y3, Y11, Y10, Y15, Y9, Y4, Y5, Y6, Y7, Y8, Y1)
	VMOVDQU Y0, (SI)
	VMOVDQU Y1, (R12)
	ADDQ $32, SI
	ADDQ $32, R12
	DECQ CX
	JNZ  invFinLoop
	VZEROUPPER
	RET

// Barrett ReduceWide replication (see nt.ReduceWide): with
// B = bHi*2^64 + bLo = floor(2^128/q) and x = hi*2^64 + lo,
//   qhat = lo64(hi*bHi) + hi64(hi*bLo) + hi64(lo*bHi) + c1 + c2
// where c1, c2 are the carries of l1+l2 and (l1+l2)+h3. The remainder
// lo - qhat*q is < 4q, canonicalized by csub 2q then csub q (the same
// multiples the scalar while-loop strips). Unsigned carry compares
// flip sign bits (Y9) and use the signed VPCMPGTQ. Carry masks are
// all-ones, so qhat accumulates them by subtraction.
// In: A=Y0, B=Y1; consts q=Y15, bHi=Y14, bLo=Y13, mask=Y11, sign=Y9.
// Out: result in Y7. Clobbers Y0-Y8, Y10, Y12.
#define BARRETTMUL \
	MULHI(Y0, Y1, Y11, Y2, Y3, Y4, Y5, Y6) \ // hi
	MULLO(Y0, Y1, Y2, Y3, Y7)         \ // lo
	MULHI(Y6, Y13, Y11, Y2, Y3, Y4, Y5, Y0) \ // h1 = hi64(hi*bLo)
	MULLO(Y6, Y13, Y2, Y3, Y1)         \ // l1
	MULHI(Y7, Y14, Y11, Y2, Y3, Y4, Y5, Y8) \ // h2 = hi64(lo*bHi)
	MULLO(Y7, Y14, Y2, Y3, Y10)        \ // l2
	MULHI(Y7, Y13, Y11, Y2, Y3, Y4, Y5, Y12) \ // h3 = hi64(lo*bLo)
	MULLO(Y6, Y14, Y2, Y3, Y6)         \ // p = lo64(hi*bHi)
	VPADDQ Y10, Y1, Y2  \ // mid = l1 + l2
	VPXOR  Y9, Y2, Y3   \
	VPXOR  Y9, Y1, Y4   \
	VPCMPGTQ Y3, Y4, Y4 \ // c1 = l1 >u mid
	VPADDQ Y12, Y2, Y5  \ // mid + h3
	VPXOR  Y9, Y5, Y5   \
	VPCMPGTQ Y5, Y3, Y3 \ // c2 = mid >u mid+h3
	VPADDQ Y0, Y6, Y6   \
	VPADDQ Y8, Y6, Y6   \
	VPSUBQ Y4, Y6, Y6   \
	VPSUBQ Y3, Y6, Y6   \ // qhat
	MULLO(Y6, Y15, Y2, Y3, Y0) \
	VPSUBQ Y0, Y7, Y7   \ // r = lo - qhat*q < 4q
	VPADDQ Y15, Y15, Y2 \
	CSUB(Y7, Y2, Y3, Y4)  \
	CSUB(Y7, Y15, Y2, Y3)

// func mulModVecAVX2(ro, ra, rb *uint64, q, bHi, bLo uint64, n int)
// ro[j] = ra[j]*rb[j] mod q, exactly nt.Mul. n is a multiple of 4.
TEXT ·mulModVecAVX2(SB), NOSPLIT, $0-56
	MOVQ ro+0(FP), DI
	MOVQ ra+8(FP), SI
	MOVQ rb+16(FP), DX
	VPBROADCASTQ q+24(FP), Y15
	LOADMASK(Y11)
	VPBROADCASTQ bHi+32(FP), Y14
	VPBROADCASTQ bLo+40(FP), Y13
	MOVQ $0x8000000000000000, AX
	MOVQ AX, X9
	VPBROADCASTQ X9, Y9
	MOVQ n+48(FP), CX
	SHRQ $2, CX

mulModLoop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	BARRETTMUL
	VMOVDQU Y7, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  mulModLoop
	VZEROUPPER
	RET

// func mulModAddVecAVX2(ro, ra, rb *uint64, q, bHi, bLo uint64, n int)
// ro[j] = (ro[j] + ra[j]*rb[j] mod q) mod q, exactly nt.Add(nt.Mul).
TEXT ·mulModAddVecAVX2(SB), NOSPLIT, $0-56
	MOVQ ro+0(FP), DI
	MOVQ ra+8(FP), SI
	MOVQ rb+16(FP), DX
	VPBROADCASTQ q+24(FP), Y15
	LOADMASK(Y11)
	VPBROADCASTQ bHi+32(FP), Y14
	VPBROADCASTQ bLo+40(FP), Y13
	MOVQ $0x8000000000000000, AX
	MOVQ AX, X9
	VPBROADCASTQ X9, Y9
	MOVQ n+48(FP), CX
	SHRQ $2, CX

mulModAddLoop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	BARRETTMUL
	VMOVDQU (DI), Y0
	VPADDQ  Y7, Y0, Y0
	CSUB(Y0, Y15, Y2, Y3)
	VMOVDQU Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  mulModAddLoop
	VZEROUPPER
	RET

// func mulShoupAddVecAVX2(ro, ra, rb, rs *uint64, q uint64, n int)
// ro[j] += ra[j]*rb[j] mod q with rs = ShoupPrecomp(rb), exactly
// nt.Add(nt.MulShoup). n is a multiple of 4.
TEXT ·mulShoupAddVecAVX2(SB), NOSPLIT, $0-48
	MOVQ ro+0(FP), DI
	MOVQ ra+8(FP), SI
	MOVQ rb+16(FP), DX
	MOVQ rs+24(FP), R8
	VPBROADCASTQ q+32(FP), Y15
	LOADMASK(Y14)
	MOVQ n+40(FP), CX
	SHRQ $2, CX

shoupAddLoop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	VMOVDQU (R8), Y2
	MULSHOUP(Y0, Y1, Y2, Y15, Y14, Y3, Y4, Y5, Y6, Y7, Y8)
	VMOVDQU (DI), Y9
	VPADDQ  Y8, Y9, Y9
	CSUB(Y9, Y15, Y3, Y4)
	VMOVDQU Y9, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, R8
	ADDQ $32, DI
	DECQ CX
	JNZ  shoupAddLoop
	VZEROUPPER
	RET

// func mulShoupAdd2VecAVX2(ro0, ro1, ra, rb0, rs0, rb1, rs1 *uint64, q uint64, n int)
// The fused key-switch inner-product shape: ro0[j] += ra[j]*rb0[j],
// ro1[j] += ra[j]*rb1[j], loading each ra lane once.
TEXT ·mulShoupAdd2VecAVX2(SB), NOSPLIT, $0-72
	MOVQ ro0+0(FP), DI
	MOVQ ro1+8(FP), R10
	MOVQ ra+16(FP), SI
	MOVQ rb0+24(FP), R8
	MOVQ rs0+32(FP), R9
	MOVQ rb1+40(FP), R11
	MOVQ rs1+48(FP), R12
	VPBROADCASTQ q+56(FP), Y15
	LOADMASK(Y14)
	MOVQ n+64(FP), CX
	SHRQ $2, CX

shoupAdd2Loop:
	VMOVDQU (SI), Y0
	VMOVDQU (R8), Y1
	VMOVDQU (R9), Y2
	MULSHOUP(Y0, Y1, Y2, Y15, Y14, Y3, Y4, Y5, Y6, Y7, Y8)
	VMOVDQU (DI), Y9
	VPADDQ  Y8, Y9, Y9
	CSUB(Y9, Y15, Y3, Y4)
	VMOVDQU Y9, (DI)
	VMOVDQU (R11), Y1
	VMOVDQU (R12), Y2
	MULSHOUP(Y0, Y1, Y2, Y15, Y14, Y3, Y4, Y5, Y6, Y7, Y8)
	VMOVDQU (R10), Y9
	VPADDQ  Y8, Y9, Y9
	CSUB(Y9, Y15, Y3, Y4)
	VMOVDQU Y9, (R10)
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, DI
	ADDQ $32, R10
	DECQ CX
	JNZ  shoupAdd2Loop
	VZEROUPPER
	RET
