package ring

import (
	"math/big"
	"testing"

	"choco/internal/nt"
	"choco/internal/sampling"
)

func testRing(t *testing.T, logN int, bitLens []int) *Ring {
	t.Helper()
	primes, err := nt.GenerateNTTPrimesVarBits(bitLens, logN)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(logN, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func randomPoly(r *Ring, seed byte) *Poly {
	src := sampling.NewSource([32]byte{seed}, "ring-test")
	p := r.NewPoly()
	for i, m := range r.Moduli {
		src.UniformMod(p.Coeffs[i], m.Value)
	}
	return p
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(1, []uint64{12289}); err == nil {
		t.Error("expected error for logN too small")
	}
	if _, err := NewRing(12, nil); err == nil {
		t.Error("expected error for empty modulus chain")
	}
	if _, err := NewRing(12, []uint64{12289}); err == nil {
		t.Error("12289 is not 1 mod 2^13; expected error")
	}
	if _, err := NewRing(10, []uint64{12289, 12289}); err == nil {
		t.Error("expected error for duplicate modulus")
	}
	// 2N+1 composite aligned value should be rejected as non-prime.
	if _, err := NewRing(10, []uint64{2049 * 5}); err == nil {
		t.Error("expected error for composite modulus")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	for _, logN := range []int{4, 8, 12, 13} {
		r := testRing(t, logN, []int{30, 31})
		p := randomPoly(r, byte(logN))
		orig := r.CopyPoly(p)
		r.NTT(p)
		if !p.IsNTT {
			t.Fatal("IsNTT not set")
		}
		r.INTT(p)
		if !r.Equal(p, orig) {
			t.Fatalf("logN=%d: NTT/INTT round trip mismatch", logN)
		}
	}
}

// naiveNegacyclic computes (a*b mod X^N+1) mod q coefficient-wise.
func naiveNegacyclic(m nt.Modulus, a, b []uint64) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prod := m.Mul(a[i], b[j])
			k := i + j
			if k < n {
				out[k] = m.Add(out[k], prod)
			} else {
				out[k-n] = m.Sub(out[k-n], prod)
			}
		}
	}
	return out
}

func TestNTTMultiplicationMatchesNaive(t *testing.T) {
	r := testRing(t, 6, []int{30, 31, 32})
	a := randomPoly(r, 1)
	b := randomPoly(r, 2)
	want := make([][]uint64, r.Level())
	for i, m := range r.Moduli {
		want[i] = naiveNegacyclic(m, a.Coeffs[i], b.Coeffs[i])
	}
	r.NTT(a)
	r.NTT(b)
	c := r.NewPoly()
	r.MulCoeffs(a, b, c)
	r.INTT(c)
	for i := range want {
		for j := range want[i] {
			if c.Coeffs[i][j] != want[i][j] {
				t.Fatalf("residue %d coeff %d: got %d want %d", i, j, c.Coeffs[i][j], want[i][j])
			}
		}
	}
}

func TestAddSubNegLinearity(t *testing.T) {
	r := testRing(t, 8, []int{40})
	a := randomPoly(r, 3)
	b := randomPoly(r, 4)
	sum := r.NewPoly()
	diff := r.NewPoly()
	neg := r.NewPoly()
	r.Add(a, b, sum)
	r.Sub(sum, b, diff)
	if !r.Equal(diff, a) {
		t.Error("(a+b)-b != a")
	}
	r.Neg(a, neg)
	r.Add(a, neg, sum)
	for i := range sum.Coeffs {
		for _, v := range sum.Coeffs[i] {
			if v != 0 {
				t.Fatal("a + (-a) != 0")
			}
		}
	}
}

func TestMulCoeffsAdd(t *testing.T) {
	r := testRing(t, 5, []int{30})
	a := randomPoly(r, 5)
	b := randomPoly(r, 6)
	r.NTT(a)
	r.NTT(b)
	acc := r.NewPoly()
	acc.IsNTT = true
	r.MulCoeffsAdd(a, b, acc)
	r.MulCoeffsAdd(a, b, acc)
	twice := r.NewPoly()
	r.MulCoeffs(a, b, twice)
	r.MulScalar(twice, 2, twice)
	if !r.Equal(acc, twice) {
		t.Error("MulCoeffsAdd twice != 2*(a⊙b)")
	}
}

func TestMulScalarBig(t *testing.T) {
	r := testRing(t, 5, []int{30, 31})
	a := randomPoly(r, 7)
	big5 := big.NewInt(5)
	viaBig := r.NewPoly()
	viaSmall := r.NewPoly()
	r.MulScalarBig(a, big5, viaBig)
	r.MulScalar(a, 5, viaSmall)
	if !r.Equal(viaBig, viaSmall) {
		t.Error("MulScalarBig(5) != MulScalar(5)")
	}
}

func TestAutomorphismComposition(t *testing.T) {
	// Applying g then g' equals applying g·g' mod 2N.
	r := testRing(t, 6, []int{30})
	a := randomPoly(r, 8)
	g1 := uint64(3)
	g2 := uint64(5)
	tmp := r.NewPoly()
	seq := r.NewPoly()
	r.Automorphism(a, g1, tmp)
	r.Automorphism(tmp, g2, seq)
	direct := r.NewPoly()
	r.Automorphism(a, (g1*g2)%(2*uint64(r.N)), direct)
	if !r.Equal(seq, direct) {
		t.Error("automorphism composition failed")
	}
}

func TestAutomorphismIdentityAndInverse(t *testing.T) {
	r := testRing(t, 6, []int{30})
	a := randomPoly(r, 9)
	out := r.NewPoly()
	r.Automorphism(a, 1, out)
	if !r.Equal(out, a) {
		t.Error("automorphism with g=1 is not identity")
	}
	// g * gInv ≡ 1 mod 2N restores the input.
	g := uint64(3)
	twoN := uint64(2 * r.N)
	gInv := uint64(0)
	for x := uint64(1); x < twoN; x += 2 {
		if g*x%twoN == 1 {
			gInv = x
			break
		}
	}
	tmp := r.NewPoly()
	r.Automorphism(a, g, tmp)
	r.Automorphism(tmp, gInv, out)
	if !r.Equal(out, a) {
		t.Error("automorphism inverse failed")
	}
}

func TestAutomorphismIsRingHomomorphism(t *testing.T) {
	// phi(a*b) == phi(a)*phi(b) for the negacyclic product.
	r := testRing(t, 5, []int{30})
	a := randomPoly(r, 10)
	b := randomPoly(r, 11)
	g := uint64(3)

	phiA := r.NewPoly()
	phiB := r.NewPoly()
	r.Automorphism(a, g, phiA)
	r.Automorphism(b, g, phiB)

	// lhs = phi(a*b)
	an := r.CopyPoly(a)
	bn := r.CopyPoly(b)
	r.NTT(an)
	r.NTT(bn)
	ab := r.NewPoly()
	r.MulCoeffs(an, bn, ab)
	r.INTT(ab)
	lhs := r.NewPoly()
	r.Automorphism(ab, g, lhs)

	// rhs = phi(a)*phi(b)
	r.NTT(phiA)
	r.NTT(phiB)
	rhs := r.NewPoly()
	r.MulCoeffs(phiA, phiB, rhs)
	r.INTT(rhs)

	if !r.Equal(lhs, rhs) {
		t.Error("automorphism is not multiplicative")
	}
}

func TestCRTRoundTrip(t *testing.T) {
	r := testRing(t, 6, []int{30, 31, 32})
	p := randomPoly(r, 12)
	vals := make([]*big.Int, r.N)
	r.PolyToBigintCentered(p, vals)
	back := r.NewPoly()
	r.SetCoeffsBigint(vals, back)
	if !r.Equal(p, back) {
		t.Error("CRT compose/decompose round trip failed")
	}
	half := r.halfQ
	for _, v := range vals {
		if new(big.Int).Abs(v).Cmp(half) > 0 {
			t.Error("centered value exceeds Q/2")
		}
	}
}

func TestSetCoeffsInt64Signs(t *testing.T) {
	r := testRing(t, 4, []int{30, 31})
	p := r.NewPoly()
	r.SetCoeffsInt64([]int64{-1, 1, -7, 0}, p)
	vals := make([]*big.Int, r.N)
	r.PolyToBigintCentered(p, vals)
	want := []int64{-1, 1, -7, 0}
	for i, w := range want {
		if vals[i].Int64() != w {
			t.Errorf("coeff %d = %v, want %d", i, vals[i], w)
		}
	}
}

func TestInfNormBig(t *testing.T) {
	r := testRing(t, 4, []int{30})
	p := r.NewPoly()
	r.SetCoeffsInt64([]int64{3, -9, 2, 0}, p)
	if got := r.InfNormBig(p); got.Int64() != 9 {
		t.Errorf("InfNorm = %v, want 9", got)
	}
}

func TestAtLevel(t *testing.T) {
	r := testRing(t, 5, []int{30, 31, 32})
	sub := r.AtLevel(1)
	if sub.Level() != 2 {
		t.Fatalf("AtLevel(1).Level() = %d, want 2", sub.Level())
	}
	// Operations at the sub-ring level must be consistent.
	p := sub.NewPoly()
	src := sampling.NewSource([32]byte{42}, "lvl")
	for i, m := range sub.Moduli {
		src.UniformMod(p.Coeffs[i], m.Value)
	}
	orig := sub.CopyPoly(p)
	sub.NTT(p)
	sub.INTT(p)
	if !sub.Equal(p, orig) {
		t.Error("sub-ring NTT round trip failed")
	}
}

func TestGaloisElements(t *testing.T) {
	r := testRing(t, 6, []int{30})
	if g := r.GaloisElementForRotation(0); g != 1 {
		t.Errorf("rotation 0 galois element = %d, want 1", g)
	}
	if g := r.GaloisElementForRotation(1); g != 3 {
		t.Errorf("rotation 1 galois element = %d, want 3", g)
	}
	if g := r.GaloisElementRowSwap(); g != uint64(2*r.N-1) {
		t.Errorf("row swap element = %d", g)
	}
	// rotation by -1 then by 1 composes to identity in the quotient
	// group: 3^(N/2) ≡ 1 mod 2N for the row-rotation subgroup.
	gPos := r.GaloisElementForRotation(1)
	gNeg := r.GaloisElementForRotation(-1)
	if gPos*gNeg%(2*uint64(r.N)) != 1 {
		t.Errorf("g(1)*g(-1) != 1 mod 2N: %d", gPos*gNeg%(2*uint64(r.N)))
	}
}

func BenchmarkNTT(b *testing.B) {
	primes, err := nt.GenerateNTTPrimesVarBits([]int{58, 58, 59}, 13)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRing(13, primes)
	if err != nil {
		b.Fatal(err)
	}
	p := r.NewPoly()
	src := sampling.NewSource([32]byte{1}, "bench")
	for i, m := range r.Moduli {
		src.UniformMod(p.Coeffs[i], m.Value)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NTT(p)
		r.INTT(p)
	}
}

func TestRingBoundaryDegrees(t *testing.T) {
	// The smallest and a large supported degree both round-trip.
	for _, logN := range []int{2, 14} {
		primes, err := nt.GenerateNTTPrimes(30, logN, 1)
		if err != nil {
			t.Fatalf("logN=%d: %v", logN, err)
		}
		r, err := NewRing(logN, primes)
		if err != nil {
			t.Fatalf("logN=%d: %v", logN, err)
		}
		p := randomPoly(r, byte(logN))
		orig := r.CopyPoly(p)
		r.NTT(p)
		r.INTT(p)
		if !r.Equal(p, orig) {
			t.Errorf("logN=%d round trip failed", logN)
		}
	}
	if _, err := NewRing(18, []uint64{12289}); err == nil {
		t.Error("expected error for logN beyond support")
	}
}

// TestAutomorphismNTTMatchesCoeff pins the evaluation-domain
// automorphism against the coefficient-domain reference: for every
// Galois element, NTT(Automorphism(a)) must equal
// AutomorphismNTT(NTT(a)) slot for slot. This is the identity the
// hoisted key-switching path relies on when it permutes decomposed
// digits without leaving the NTT domain.
func TestAutomorphismNTTMatchesCoeff(t *testing.T) {
	for _, logN := range []int{4, 8, 11} {
		r := testRing(t, logN, []int{30, 31})
		gs := []uint64{3, 9, 5, r.GaloisElementRowSwap()}
		for s := 1; s < 5; s++ {
			gs = append(gs, r.GaloisElementForRotation(s), r.GaloisElementForRotation(-s))
		}
		for _, g := range gs {
			a := randomPoly(r, byte(logN))

			viaCoeff := r.NewPoly()
			r.Automorphism(a, g, viaCoeff)
			r.NTT(viaCoeff)

			r.NTT(a)
			out := r.NewPoly()
			r.AutomorphismNTT(a, g, out)

			if !r.Equal(viaCoeff, out) {
				t.Fatalf("logN=%d g=%d: AutomorphismNTT disagrees with NTT-of-Automorphism", logN, g)
			}
		}
	}
}

// TestAutomorphismTableCache checks that repeated automorphisms through
// the cached tables stay self-consistent and that AtLevel sub-rings see
// the same cache (the tables depend only on N).
func TestAutomorphismTableCache(t *testing.T) {
	r := testRing(t, 8, []int{30, 31, 32})
	sub := r.AtLevel(1)
	if sub.autos != r.autos {
		t.Fatal("AtLevel sub-ring does not share the automorphism cache")
	}
	g := r.GaloisElementForRotation(3)
	a := randomPoly(r, 77)
	first := r.NewPoly()
	r.Automorphism(a, g, first)
	second := r.NewPoly()
	r.Automorphism(a, g, second) // cached-table path
	if !r.Equal(first, second) {
		t.Fatal("cached automorphism table diverges from first computation")
	}
}

// TestAutomorphismNTTRejectsCoeffDomain pins the domain guard.
func TestAutomorphismNTTRejectsCoeffDomain(t *testing.T) {
	r := testRing(t, 4, []int{30})
	a := randomPoly(r, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for coefficient-domain input")
		}
	}()
	r.AutomorphismNTT(a, 3, r.NewPoly())
}

func TestRowKernelsMatchWholePolyNTT(t *testing.T) {
	r := testRing(t, 10, []int{40, 41, 42})
	p := randomPoly(r, 5)
	q := r.CopyPoly(p)
	r.NTT(p)
	for lvl := range q.Coeffs {
		r.NTTForwardRow(lvl, q.Coeffs[lvl])
	}
	q.DeclareNTT()
	if !r.Equal(p, q) {
		t.Fatal("per-row forward NTT diverged from whole-poly NTT")
	}
	r.INTT(p)
	for lvl := range q.Coeffs {
		r.NTTInverseRow(lvl, q.Coeffs[lvl])
	}
	q.DeclareCoeff()
	if !r.Equal(p, q) {
		t.Fatal("per-row inverse NTT diverged from whole-poly INTT")
	}
}

func TestCoeffBigintCenteredMatchesPolyComposition(t *testing.T) {
	r := testRing(t, 8, []int{30, 31, 32})
	p := randomPoly(r, 9)
	want := make([]*big.Int, r.N)
	r.PolyToBigintCentered(p, want)
	got := new(big.Int)
	for j := 0; j < r.N; j++ {
		r.CoeffBigintCentered(p, j, got)
		if got.Cmp(want[j]) != 0 {
			t.Fatalf("coeff %d: got %v want %v", j, got, want[j])
		}
	}
}

func TestAutomorphismNTTMulShoupAdd2MatchesTwoStep(t *testing.T) {
	// The fused gather-and-accumulate must be byte-identical to the
	// unfused sequence: AutomorphismNTT into scratch, then
	// MulCoeffsShoupAdd2 — for several Galois elements and non-zero
	// initial accumulator contents.
	r := testRing(t, 8, []int{30, 31, 32})
	a := randomPoly(r, 31)
	b0 := randomPoly(r, 32)
	b1 := randomPoly(r, 33)
	r.NTT(a)
	r.NTT(b0)
	r.NTT(b1)
	b0Shoup := r.ShoupPolyPrecomp(b0)
	b1Shoup := r.ShoupPolyPrecomp(b1)

	for _, g := range []uint64{3, r.GaloisElementForRotation(5), r.GaloisElementRowSwap()} {
		fused0 := randomPoly(r, 34)
		fused1 := randomPoly(r, 35)
		seq0 := r.CopyPoly(fused0)
		seq1 := r.CopyPoly(fused1)
		for _, p := range []*Poly{fused0, fused1, seq0, seq1} {
			p.DeclareNTT()
		}

		r.AutomorphismNTTMulShoupAdd2(a, g, b0, b0Shoup, fused0, b1, b1Shoup, fused1)

		dig := r.NewPoly()
		dig.DeclareNTT()
		r.AutomorphismNTT(a, g, dig)
		r.MulCoeffsShoupAdd2(dig, b0, b0Shoup, seq0, b1, b1Shoup, seq1)

		if !r.Equal(fused0, seq0) || !r.Equal(fused1, seq1) {
			t.Fatalf("fused gather-accumulate diverged from two-step sequence at g=%d", g)
		}
	}
}
