//go:build !chocodebug

package ring

import "testing"

// The twin of debug_tagged_test.go: the same invariant violations that
// panic under -tags chocodebug must pass through silently in the
// default build — the assertion layer is strictly additive and the hot
// path carries no residue scanning.

func TestOutOfRangeResidueSilentWithoutChocodebug(t *testing.T) {
	r := testRing(t, 4, []int{30, 31})
	p := randomPoly(r, 1)
	out := r.NewPoly()
	p.Coeffs[0][3] = r.Moduli[0].Value
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("untagged build panicked on out-of-range residue: %v", rec)
		}
	}()
	r.Add(p, p, out) // computes a (wrong) sum, but must not panic
}

func TestDomainMismatchPanicsWithoutChocodebug(t *testing.T) {
	// Domain consistency is a release-build invariant too: MulCoeffs
	// panics on coefficient-domain operands with or without the tag.
	r := testRing(t, 4, []int{30, 31})
	a := randomPoly(r, 3)
	b := randomPoly(r, 4)
	out := r.NewPoly()
	defer func() {
		if recover() == nil {
			t.Fatalf("MulCoeffs on coefficient-domain operands must panic in every build")
		}
	}()
	r.MulCoeffs(a, b, out)
}
