package ring

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"choco/internal/nt"
)

// propertyRing is a fixed small ring for the quick.Check properties.
func propertyRing(t *testing.T) *Ring {
	t.Helper()
	primes, err := nt.GenerateNTTPrimesVarBits([]int{30, 31}, 6)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(6, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// polyValue makes *Poly generatable by testing/quick.
type polyValue struct{ coeffs []uint64 }

func (polyValue) Generate(rand *rand.Rand, size int) reflect.Value {
	c := make([]uint64, 64)
	for i := range c {
		c[i] = rand.Uint64()
	}
	return reflect.ValueOf(polyValue{coeffs: c})
}

func (r *Ring) fromValue(v polyValue) *Poly {
	p := r.NewPoly()
	r.SetCoeffsUint64(v.coeffs, p)
	return p
}

func TestQuickNTTIsLinear(t *testing.T) {
	r := propertyRing(t)
	f := func(av, bv polyValue) bool {
		a, b := r.fromValue(av), r.fromValue(bv)
		// NTT(a+b) == NTT(a) + NTT(b)
		sum := r.NewPoly()
		r.Add(a, b, sum)
		r.NTT(sum)
		r.NTT(a)
		r.NTT(b)
		sum2 := r.NewPoly()
		r.Add(a, b, sum2)
		return r.Equal(sum, sum2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulCommutesAndDistributes(t *testing.T) {
	r := propertyRing(t)
	f := func(av, bv, cv polyValue) bool {
		a, b, c := r.fromValue(av), r.fromValue(bv), r.fromValue(cv)
		r.NTT(a)
		r.NTT(b)
		r.NTT(c)
		// a⊙b == b⊙a
		ab := r.NewPoly()
		ba := r.NewPoly()
		r.MulCoeffs(a, b, ab)
		r.MulCoeffs(b, a, ba)
		if !r.Equal(ab, ba) {
			return false
		}
		// a⊙(b+c) == a⊙b + a⊙c
		bc := r.NewPoly()
		r.Add(b, c, bc)
		lhs := r.NewPoly()
		r.MulCoeffs(a, bc, lhs)
		ac := r.NewPoly()
		r.MulCoeffs(a, c, ac)
		rhs := r.NewPoly()
		r.Add(ab, ac, rhs)
		return r.Equal(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickNegacyclicShift(t *testing.T) {
	// Multiplying by X shifts coefficients with a sign wrap:
	// (a·X)[0] = -a[N-1], (a·X)[i] = a[i-1].
	r := propertyRing(t)
	x := r.NewPoly()
	x.Coeffs[0][1] = 1
	x.Coeffs[1][1] = 1
	r.NTT(x)
	f := func(av polyValue) bool {
		a := r.fromValue(av)
		orig := r.CopyPoly(a)
		r.NTT(a)
		shifted := r.NewPoly()
		r.MulCoeffs(a, x, shifted)
		r.INTT(shifted)
		for lvl, m := range r.Moduli {
			if shifted.Coeffs[lvl][0] != m.Neg(orig.Coeffs[lvl][r.N-1]) {
				return false
			}
			for i := 1; i < r.N; i++ {
				if shifted.Coeffs[lvl][i] != orig.Coeffs[lvl][i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickAutomorphismPreservesAddition(t *testing.T) {
	r := propertyRing(t)
	f := func(av, bv polyValue, gSeed uint8) bool {
		g := uint64(2*int(gSeed)+3) % uint64(2*r.N)
		if g == 0 {
			g = 3
		}
		a, b := r.fromValue(av), r.fromValue(bv)
		sum := r.NewPoly()
		r.Add(a, b, sum)
		phiSum := r.NewPoly()
		r.Automorphism(sum, g, phiSum)
		pa := r.NewPoly()
		pb := r.NewPoly()
		r.Automorphism(a, g, pa)
		r.Automorphism(b, g, pb)
		rhs := r.NewPoly()
		r.Add(pa, pb, rhs)
		return r.Equal(phiSum, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickAutomorphismIsPermutationWithSigns(t *testing.T) {
	// Every coefficient magnitude is preserved; only position and sign
	// change.
	r := propertyRing(t)
	f := func(av polyValue, gSeed uint8) bool {
		g := uint64(2*int(gSeed)+3) % uint64(2*r.N)
		if g == 0 {
			g = 3
		}
		a := r.fromValue(av)
		out := r.NewPoly()
		r.Automorphism(a, g, out)
		for lvl, m := range r.Moduli {
			counts := map[uint64]int{}
			for i := 0; i < r.N; i++ {
				v := a.Coeffs[lvl][i]
				if m.Neg(v) < v {
					v = m.Neg(v)
				}
				counts[v]++
			}
			for i := 0; i < r.N; i++ {
				v := out.Coeffs[lvl][i]
				if m.Neg(v) < v {
					v = m.Neg(v)
				}
				counts[v]--
			}
			for _, c := range counts {
				if c != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickCRTComposeDecompose(t *testing.T) {
	r := propertyRing(t)
	f := func(av polyValue) bool {
		a := r.fromValue(av)
		vals := make([]*big.Int, r.N)
		r.PolyToBigintCentered(a, vals)
		back := r.NewPoly()
		r.SetCoeffsBigint(vals, back)
		return r.Equal(a, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickScalarMulMatchesRepeatedAdd(t *testing.T) {
	r := propertyRing(t)
	f := func(av polyValue, c uint8) bool {
		a := r.fromValue(av)
		byMul := r.NewPoly()
		r.MulScalar(a, uint64(c), byMul)
		acc := r.NewPoly()
		for i := 0; i < int(c); i++ {
			r.Add(acc, a, acc)
		}
		return r.Equal(byMul, acc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
