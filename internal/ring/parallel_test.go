package ring

import (
	"math/big"
	"testing"

	"choco/internal/par"
)

// forceParallel drops every threshold to 1 and widens the pool so all
// ring ops take the parallel path regardless of ring size, restoring
// the defaults afterwards.
func forceParallel(t *testing.T) {
	t.Helper()
	oldT, oldC, oldE := parMinTransform, parMinCoeffwise, parMinElementary
	oldP := par.Parallelism()
	SetParallelThresholds(1, 1, 1)
	par.SetParallelism(4)
	t.Cleanup(func() {
		SetParallelThresholds(oldT, oldC, oldE)
		par.SetParallelism(oldP)
	})
}

// TestParallelOpsMatchSerial runs every parallelized ring operation
// once serially and once through the worker pool and requires
// bit-identical outputs: residue rows are independent, so any fan-out
// must be invisible in the result.
func TestParallelOpsMatchSerial(t *testing.T) {
	r := testRing(t, 8, []int{30, 30, 30, 30})
	a := randomPoly(r, 21)
	b := randomPoly(r, 22)
	g := r.GaloisElementForRotation(3)

	type op struct {
		name string
		run  func(a, b, out *Poly)
	}
	ops := []op{
		{"Add", func(a, b, out *Poly) { r.Add(a, b, out) }},
		{"Sub", func(a, b, out *Poly) { r.Sub(a, b, out) }},
		{"Neg", func(a, _, out *Poly) { r.Neg(a, out) }},
		{"MulScalar", func(a, _, out *Poly) { r.MulScalar(a, 12345, out) }},
		{"MulScalarBig", func(a, _, out *Poly) { r.MulScalarBig(a, big.NewInt(1<<40), out) }},
		{"Automorphism", func(a, _, out *Poly) { r.Automorphism(a, g, out) }},
		{"NTT", func(a, _, out *Poly) { r.Copy(out, a); r.NTT(out) }},
		{"NTTRoundTrip", func(a, _, out *Poly) { r.Copy(out, a); r.NTT(out); r.INTT(out) }},
		{"MulCoeffs", func(a, b, out *Poly) {
			an, bn := r.CopyPoly(a), r.CopyPoly(b)
			r.NTT(an)
			r.NTT(bn)
			r.MulCoeffs(an, bn, out)
		}},
		{"MulCoeffsAdd", func(a, b, out *Poly) {
			an, bn := r.CopyPoly(a), r.CopyPoly(b)
			r.NTT(an)
			r.NTT(bn)
			r.Zero(out)
			out.DeclareNTT()
			r.MulCoeffsAdd(an, bn, out)
			r.MulCoeffsAdd(bn, an, out)
		}},
	}

	serial := make([]*Poly, len(ops))
	for i, o := range ops {
		serial[i] = r.NewPoly()
		o.run(a, b, serial[i])
	}

	forceParallel(t)
	for i, o := range ops {
		got := r.NewPoly()
		o.run(a, b, got)
		if !r.Equal(got, serial[i]) {
			t.Errorf("%s: parallel result differs from serial", o.name)
		}
	}
}

// TestGetPutPoly pins the scratch-pool contract: polys come back
// zeroed in the coefficient domain, and mismatched shapes are dropped
// instead of poisoning the pool.
func TestGetPutPoly(t *testing.T) {
	r := testRing(t, 6, []int{30, 30})
	p := r.GetPoly()
	if p.IsNTT {
		t.Fatal("GetPoly returned an NTT-domain poly")
	}
	p.Coeffs[0][0] = 42
	p.DeclareNTT()
	r.PutPoly(p)
	q := r.GetPoly()
	if q.IsNTT || q.Coeffs[0][0] != 0 {
		t.Fatal("recycled poly was not reset")
	}
	if len(q.Coeffs) != 2 || len(q.Coeffs[0]) != r.N {
		t.Fatalf("recycled poly has wrong shape: %d rows", len(q.Coeffs))
	}

	// A poly from a truncated ring must not enter the full ring's pool.
	sub := r.AtLevel(0)
	r.PutPoly(sub.NewPoly())
	w := r.GetPoly()
	if len(w.Coeffs) != 2 {
		t.Fatalf("pool returned a truncated poly with %d rows", len(w.Coeffs))
	}
	r.PutPoly(nil) // must not panic
}
