package ring

import (
	"math/rand"
	"testing"

	"choco/internal/nt"
)

// vectorTestRings builds rings covering every preset shape in the
// paper's Table 3 ({36,36,37}, {58,58,59}, {60,60,60}, and the test
// presets) plus boundary degrees: the smallest vectorizable ring
// (N=8), the scalar-fallback floor (N=4), and a degree whose t=2/t=1
// stages dominate (N=16).
func vectorTestRings(t testing.TB) []*Ring {
	t.Helper()
	shapes := []struct {
		logN int
		bits []int
	}{
		{2, []int{40, 41}},
		{3, []int{40, 41}},
		{4, []int{36, 36, 37}},
		{11, []int{40, 40, 41}},
		{11, []int{50, 50, 51}},
		{12, []int{36, 36, 37}},
		{13, []int{58, 58, 59}},
		{13, []int{60, 60, 60}},
	}
	var rings []*Ring
	for _, s := range shapes {
		qs, err := nt.GenerateNTTPrimesVarBits(s.bits, s.logN)
		if err != nil {
			t.Fatalf("primes logN=%d bits=%v: %v", s.logN, s.bits, err)
		}
		r, err := NewRing(s.logN, qs)
		if err != nil {
			t.Fatalf("NewRing logN=%d: %v", s.logN, err)
		}
		rings = append(rings, r)
	}
	return rings
}

func randomVecPoly(r *Ring, rng *rand.Rand, ntt bool) *Poly {
	p := r.NewPoly()
	for i, m := range r.Moduli {
		row := p.Coeffs[i]
		for j := range row {
			row[j] = rng.Uint64() % m.Value
		}
	}
	if ntt {
		p.DeclareNTT()
	}
	return p
}

// requireVector skips the test on hosts/builds without vector kernels
// and registers cleanup restoring the prior dispatch state.
func requireVector(t *testing.T) {
	t.Helper()
	prev := VectorKernelsEnabled()
	t.Cleanup(func() { SetVectorKernels(prev) })
	if !SetVectorKernels(true) {
		t.Skip("no vector kernels on this host/build")
	}
}

// TestNTTVectorScalarIdentical transforms identical random rows
// through the vector and scalar paths — both directions, every preset
// shape, every drop level — and requires bit-identical residues.
func TestNTTVectorScalarIdentical(t *testing.T) {
	requireVector(t)
	rng := rand.New(rand.NewSource(41))
	for _, full := range vectorTestRings(t) {
		for lvl := full.Level() - 1; lvl >= 0; lvl-- {
			r := full
			if lvl < full.Level()-1 {
				r = full.AtLevel(lvl)
			}
			a := randomVecPoly(r, rng, false)
			b := r.CopyPoly(a)

			SetVectorKernels(true)
			r.NTT(a)
			SetVectorKernels(false)
			r.NTT(b)
			if !r.Equal(a, b) {
				t.Fatalf("N=%d lvl=%d: forward NTT vector != scalar", r.N, lvl)
			}

			SetVectorKernels(true)
			r.INTT(a)
			SetVectorKernels(false)
			r.INTT(b)
			SetVectorKernels(true)
			if !r.Equal(a, b) {
				t.Fatalf("N=%d lvl=%d: inverse NTT vector != scalar", r.N, lvl)
			}
		}
	}
}

// TestDyadicVectorScalarIdentical covers the four fused dyadic kernels
// against their scalar twins on every preset shape.
func TestDyadicVectorScalarIdentical(t *testing.T) {
	requireVector(t)
	rng := rand.New(rand.NewSource(43))
	for _, r := range vectorTestRings(t) {
		a := randomVecPoly(r, rng, true)
		b0 := randomVecPoly(r, rng, true)
		b1 := randomVecPoly(r, rng, true)
		acc0 := randomVecPoly(r, rng, true)
		acc1 := randomVecPoly(r, rng, true)
		s0 := r.ShoupPolyPrecomp(b0)
		s1 := r.ShoupPolyPrecomp(b1)

		type variant struct {
			name string
			run  func(out0, out1 *Poly)
		}
		variants := []variant{
			{"MulCoeffs", func(o0, _ *Poly) { r.MulCoeffs(a, b0, o0) }},
			{"MulCoeffsAdd", func(o0, _ *Poly) { r.MulCoeffsAdd(a, b0, o0) }},
			{"MulCoeffsShoupAdd", func(o0, _ *Poly) { r.MulCoeffsShoupAdd(a, b0, s0, o0) }},
			{"MulCoeffsShoupAdd2", func(o0, o1 *Poly) { r.MulCoeffsShoupAdd2(a, b0, s0, o0, b1, s1, o1) }},
		}
		for _, v := range variants {
			vec0, vec1 := r.CopyPoly(acc0), r.CopyPoly(acc1)
			ref0, ref1 := r.CopyPoly(acc0), r.CopyPoly(acc1)
			SetVectorKernels(true)
			v.run(vec0, vec1)
			SetVectorKernels(false)
			v.run(ref0, ref1)
			SetVectorKernels(true)
			if !r.Equal(vec0, ref0) || !r.Equal(vec1, ref1) {
				t.Fatalf("N=%d %s: vector != scalar", r.N, v.name)
			}
		}
	}
}

// TestNTTVectorRoundTrip checks NTT∘INTT is the identity through the
// vector path alone (the transforms must invert exactly, not only
// match the scalar code).
func TestNTTVectorRoundTrip(t *testing.T) {
	requireVector(t)
	rng := rand.New(rand.NewSource(47))
	for _, r := range vectorTestRings(t) {
		a := randomVecPoly(r, rng, false)
		want := r.CopyPoly(a)
		r.NTT(a)
		r.INTT(a)
		if !r.Equal(a, want) {
			t.Fatalf("N=%d: vector NTT round trip not identity", r.N)
		}
	}
}

// FuzzNTTRowVector feeds arbitrary residue rows through both NTT
// directions on both paths and asserts byte identity. The row is
// seeded from fuzz bytes so the corpus explores structured patterns
// (all-zero, boundary residues) alongside random ones.
func FuzzNTTRowVector(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3})
	f.Add(uint64(99), []byte{255})
	f.Fuzz(func(t *testing.T, seed uint64, pattern []byte) {
		if !vectorAvailable() {
			t.Skip("scalar-only build")
		}
		prev := VectorKernelsEnabled()
		defer SetVectorKernels(prev)
		qs, err := nt.GenerateNTTPrimesVarBits([]int{55}, 6)
		if err != nil {
			t.Skip("no prime")
		}
		r, err := NewRing(6, qs)
		if err != nil {
			t.Skip("no ring")
		}
		q := r.Moduli[0].Value
		rng := rand.New(rand.NewSource(int64(seed)))
		row := make([]uint64, r.N)
		for j := range row {
			if len(pattern) > 0 && pattern[j%len(pattern)]&1 == 0 {
				row[j] = uint64(pattern[j%len(pattern)]) % q
			} else {
				row[j] = rng.Uint64() % q
			}
		}
		ref := append([]uint64(nil), row...)

		SetVectorKernels(true)
		r.NTTForwardRow(0, row)
		SetVectorKernels(false)
		r.NTTForwardRow(0, ref)
		for j := range row {
			if row[j] != ref[j] {
				t.Fatalf("forward row diverges at %d: %d != %d", j, row[j], ref[j])
			}
		}
		SetVectorKernels(true)
		r.NTTInverseRow(0, row)
		SetVectorKernels(false)
		r.NTTInverseRow(0, ref)
		for j := range row {
			if row[j] != ref[j] {
				t.Fatalf("inverse row diverges at %d: %d != %d", j, row[j], ref[j])
			}
		}
	})
}

func benchNTTRow(b *testing.B, logN int, vec bool, forward bool) {
	prev := VectorKernelsEnabled()
	defer SetVectorKernels(prev)
	if SetVectorKernels(vec) != vec {
		b.Skip("vector kernels unavailable")
	}
	qs, err := nt.GenerateNTTPrimesVarBits([]int{60}, logN)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRing(logN, qs)
	if err != nil {
		b.Fatal(err)
	}
	row := make([]uint64, r.N)
	rng := rand.New(rand.NewSource(7))
	for j := range row {
		row[j] = rng.Uint64() % r.Moduli[0].Value
	}
	b.SetBytes(int64(8 * r.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if forward {
			r.NTTForwardRow(0, row)
		} else {
			r.NTTInverseRow(0, row)
		}
	}
}

func BenchmarkNTTRowFwdScalar(b *testing.B) { benchNTTRow(b, 13, false, true) }
func BenchmarkNTTRowFwdVector(b *testing.B) { benchNTTRow(b, 13, true, true) }
func BenchmarkNTTRowInvScalar(b *testing.B) { benchNTTRow(b, 13, false, false) }
func BenchmarkNTTRowInvVector(b *testing.B) { benchNTTRow(b, 13, true, false) }
