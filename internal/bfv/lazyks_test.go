package bfv

import (
	"strings"
	"testing"

	"choco/internal/par"
)

// TestQPAccumulatorMatchesSerialFold pins the tentpole guarantee of the
// lazy key-switch accumulator: accumulating a rotation sum in the QP
// basis and paying one shared FinalizeModDown is byte-identical to
// rotating per step on the materialized path and folding with Add, on
// every preset.
func TestQPAccumulatorMatchesSerialFold(t *testing.T) {
	steps := []int{0, 1, 2, 5, -1}
	keySteps := []int{1, 2, 5, -1}
	for _, tc := range []struct {
		name   string
		params Parameters
	}{
		{"PresetTest", PresetTest()},
		{"PresetA", PresetA()},
		{"PresetB", PresetB()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			kit := newTestKit(t, tc.params, keySteps...)
			ct, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), kit.ctx.T.Value))
			if err != nil {
				t.Fatal(err)
			}

			var serial *Ciphertext
			for _, s := range steps {
				term, err := kit.ev.RotateRows(ct, s)
				if err != nil {
					t.Fatal(err)
				}
				if serial == nil {
					serial = term
				} else {
					serial = kit.ev.Add(serial, term)
				}
			}

			dc, err := kit.ev.Decompose(ct)
			if err != nil {
				t.Fatal(err)
			}
			defer dc.Release()
			qa := kit.ev.NewQPAccumulator()
			for _, s := range steps {
				if err := kit.ev.AccumulateQP(qa, dc, s); err != nil {
					t.Fatal(err)
				}
			}
			lazy := kit.ev.FinalizeModDown(qa)
			if !ctsIdentical(kit.ctx.RingQ, serial, lazy) {
				t.Error("lazy rotation sum differs from serial rotate-and-fold")
			}

			// Worker-partitioned accumulators merged out of order must
			// finalize to the same bytes as the serial accumulator.
			qaA := kit.ev.NewQPAccumulator()
			qaB := kit.ev.NewQPAccumulator()
			for i, s := range steps {
				dst := qaA
				if i%2 == 1 {
					dst = qaB
				}
				if err := kit.ev.AccumulateQP(dst, dc, s); err != nil {
					t.Fatal(err)
				}
			}
			qaB.Merge(qaA)
			merged := kit.ev.FinalizeModDown(qaB)
			if !ctsIdentical(kit.ctx.RingQ, serial, merged) {
				t.Error("merged worker accumulators differ from serial fold")
			}
		})
	}
}

// TestRotateRowsLazyNTTMatchesMaterialized pins the NTT-domain rotation
// used for lazy baby steps: FromNTT(RotateRowsLazyNTT(dc, s)) must equal
// the materialized hoisted rotation byte for byte, including s = 0.
func TestRotateRowsLazyNTTMatchesMaterialized(t *testing.T) {
	steps := []int{0, 1, 2, 5, -1}
	kit := newTestKit(t, PresetB(), 1, 2, 5, -1)
	ct, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), kit.ctx.T.Value))
	if err != nil {
		t.Fatal(err)
	}
	dc, err := kit.ev.Decompose(ct)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Release()
	for _, s := range steps {
		lazy, err := kit.ev.RotateRowsLazyNTT(dc, s)
		if err != nil {
			t.Fatal(err)
		}
		got := kit.ev.FromNTT(lazy)
		want, err := kit.ev.RotateRowsDecomposed(dc, s)
		if err != nil {
			t.Fatal(err)
		}
		if !ctsIdentical(kit.ctx.RingQ, want, got) {
			t.Errorf("steps=%d: NTT-domain rotation differs from materialized path", s)
		}
		kit.ctx.RecycleCt(got)
	}
}

// TestMulPlainAccMatchesMulPlainChain pins the NTT-domain inner sum:
// accumulating plaintext products with MulPlainAcc and transforming once
// equals the MulPlain + Add chain on materialized operands, because the
// inverse NTT is linear.
func TestMulPlainAccMatchesMulPlainChain(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1, 2)
	n := kit.ctx.Params.N()
	ct, err := kit.enc.EncryptUints(rampUints(n, kit.ctx.T.Value))
	if err != nil {
		t.Fatal(err)
	}
	rots, err := kit.ev.RotateRowsHoisted(ct, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	terms := []*Ciphertext{ct, rots[0], rots[1]}
	pms := make([]*PlaintextMul, len(terms))
	for i := range pms {
		vals := make([]int64, n)
		for j := range vals {
			vals[j] = int64((i*37+j)%11) - 5
		}
		pt, err := kit.ecd.EncodeInts(vals)
		if err != nil {
			t.Fatal(err)
		}
		pms[i] = kit.ev.PrepareMul(pt)
	}

	var serial *Ciphertext
	for i, x := range terms {
		term := kit.ev.MulPlain(x, pms[i])
		if serial == nil {
			serial = term
		} else {
			serial = kit.ev.Add(serial, term)
		}
	}

	acc := kit.ev.NewNTTAccumulator()
	for i, x := range terms {
		nx := kit.ev.ToNTT(x)
		kit.ev.MulPlainAcc(acc, nx, pms[i])
		nx.Recycle(kit.ctx)
	}
	lazy := kit.ev.FromNTT(acc)
	if !ctsIdentical(kit.ctx.RingQ, serial, lazy) {
		t.Error("NTT-domain multiply-accumulate differs from MulPlain+Add chain")
	}
}

// TestLazyMissingGaloisKey pins the error paths of the lazy APIs.
func TestLazyMissingGaloisKey(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	ct, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), kit.ctx.T.Value))
	if err != nil {
		t.Fatal(err)
	}
	dc, err := kit.ev.Decompose(ct)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Release()
	if _, err := kit.ev.RotateRowsLazyNTT(dc, 3); err == nil {
		t.Fatal("expected missing-key error from RotateRowsLazyNTT")
	} else if !strings.Contains(err.Error(), "missing Galois key") {
		t.Fatalf("unexpected error: %v", err)
	}
	qa := kit.ev.NewQPAccumulator()
	defer qa.Release()
	if err := kit.ev.AccumulateQP(qa, dc, 3); err == nil {
		t.Fatal("expected missing-key error from AccumulateQP")
	} else if !strings.Contains(err.Error(), "missing Galois key") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRotateRowsHoistedAllocs pins the allocation diet of the hoisted
// rotation path: with outputs recycled back into the ring scratch pool
// (as the FC kernel does), a steady-state batch-8 hoisted rotation at
// preset B allocates only bookkeeping — closure headers from the
// per-row fan-out and ciphertext headers, ~100 objects and a few KB
// per batch — never polynomial buffers. The pre-recycling path paid
// 182–236 allocs/op including fresh output polys per rotation
// (BENCH_rotations.json).
func TestRotateRowsHoistedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	old := par.Parallelism()
	par.SetParallelism(1) // serial fallback: no goroutine or closure overhead
	defer par.SetParallelism(old)
	steps := []int{1, 2, 3, 4, 5, 6, 7, 8}
	kit := newTestKit(t, PresetB(), steps...)
	ct, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), kit.ctx.T.Value))
	if err != nil {
		t.Fatal(err)
	}
	batch := func() {
		outs, err := kit.ev.RotateRowsHoisted(ct, steps)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			kit.ctx.RecycleCt(o)
		}
	}
	for i := 0; i < 4; i++ { // warm the ring scratch pools
		batch()
	}
	a := testing.AllocsPerRun(16, batch)
	t.Logf("rotate-batch8-hoisted: %.1f allocs/op", a)
	if a > 128 {
		t.Errorf("hoisted batch-8 rotation allocates %.1f objects/op, want <= 128", a)
	}
}
