package bfv

import (
	"math/big"
	"math/bits"

	"choco/internal/ring"
)

// This file implements RNS-native decryption scaling: computing
// m_j = round(t·x_j/Q) mod t directly from the RNS residues of the
// decryption phase x = [c0 + c1·s + ...]_q, with no big.Int on the hot
// path. It is the software analogue of the CHOCO-TACO decryption
// pipeline, which likewise never composes the CRT.
//
// Derivation. Write x's CRT composition over the active moduli
// q_0..q_{L-1} (Q = ∏ q_i, Ĥ_i = Q/q_i, ĥ_i = Ĥ_i^{-1} mod q_i):
//
//	x ≡ Σ_i y_i·Ĥ_i (mod Q),  y_i = x_i·ĥ_i mod q_i.
//
// The map x ↦ round(t·x/Q) mod t is invariant under x → x + kQ
// (adding kQ shifts the argument by exactly k·t), and — because Q is a
// product of odd primes — t·x/Q is never an exact half-integer, so
// every rounding convention agrees and the invariance is
// unconditional. We may therefore scale the uncentered representative
// Σ y_i·Ĥ_i instead of the centered one the big.Int oracle uses.
// Splitting t·Ĥ_i/Q = ω_i + θ_i into integer part ω_i ∈ [0, t) and
// fraction θ_i ∈ [0, 1):
//
//	round(t·x/Q) ≡ Σ_i y_i·ω_i + round(Σ_i y_i·θ_i)  (mod t).
//
// The first sum is exact mod-t arithmetic. The second is accumulated
// in 128-bit fixed point (Θ_i = floor(θ_i·2^128), one 192-bit
// accumulator built from bits.Mul64/Add64). Each Θ_i underestimates
// θ_i by < 2^-128, so after multiplying by y_i < 2^61 and summing
// L ≤ 7 terms the accumulated value underestimates the true fraction
// by strictly less than 2^64 ulps of the 128-bit fraction. After
// adding ½, the floor can therefore only be wrong if the top fraction
// word is all-ones — a 2^-64 sliver per coefficient — and those
// coefficients fall back to an exact per-coefficient big.Int
// composition (ring.CoeffBigintCentered). L > maxScaleResidues uses
// the full oracle: beyond that the one-sided error bound and the
// 192-bit accumulator no longer hold.

// maxScaleResidues bounds the residue count for the fixed-point fast
// path; both the 192-bit accumulator (L·2^189 < 2^192) and the
// boundary-detection bound (L·2^61 < 2^64) require L ≤ 7.
const maxScaleResidues = 7

// rnsScaler holds the per-residue decryption scaling constants for one
// drop level. All slices have length L = active residues.
type rnsScaler struct {
	hatInv      []uint64 // ĥ_i = (Q/q_i)^{-1} mod q_i
	hatInvShoup []uint64 // Shoup companion of ĥ_i
	omegaT      []uint64 // ω_i = floor(t·Ĥ_i/Q) ∈ [0, t)
	thetaHi     []uint64 // Θ_i = floor(frac(t·Ĥ_i/Q)·2^128), high word
	thetaLo     []uint64 // Θ_i low word
}

// buildRNSScalers precomputes one rnsScaler per drop level. Setup-time
// big.Int arithmetic; runs once per Context.
func buildRNSScalers(ctx *Context) []rnsScaler {
	nData := len(ctx.RingQ.Moduli)
	scalers := make([]rnsScaler, nData)
	bigT := new(big.Int).SetUint64(ctx.T.Value)
	//lint:ignore-choco bigintloop one-time setup precomputation, not a decrypt hot path
	for d := 0; d < nData; d++ {
		r := ctx.RingAtDrop(d)
		L := len(r.Moduli)
		sc := &scalers[d]
		sc.hatInv = make([]uint64, L)
		sc.hatInvShoup = make([]uint64, L)
		sc.omegaT = make([]uint64, L)
		sc.thetaHi = make([]uint64, L)
		sc.thetaLo = make([]uint64, L)
		bigQ := r.ModulusBig()
		for i, m := range r.Moduli {
			qi := new(big.Int).SetUint64(m.Value)
			hat := new(big.Int).Div(bigQ, qi)
			hatInv := new(big.Int).ModInverse(new(big.Int).Mod(hat, qi), qi)
			sc.hatInv[i] = hatInv.Uint64()
			sc.hatInvShoup[i] = m.ShoupPrecomp(sc.hatInv[i])
			tH := new(big.Int).Mul(bigT, hat)
			omega, rho := new(big.Int).QuoRem(tH, bigQ, new(big.Int))
			sc.omegaT[i] = omega.Uint64() // < t since Ĥ_i < Q
			theta := rho.Lsh(rho, 128)
			theta.Div(theta, bigQ)
			sc.thetaLo[i] = theta.Uint64()
			sc.thetaHi[i] = theta.Rsh(theta, 64).Uint64()
		}
	}
	return scalers
}

// scaleCenteredInto writes m_j = round(t·x_j/Q) mod t for every
// coefficient of the phase polynomial x (coefficient domain, at the
// given drop level) into out. Flat uint64 pass; allocation-free
// outside the near-boundary oracle fallback.
func (ctx *Context) scaleCenteredInto(x *ring.Poly, drop int, out []uint64) {
	r := ctx.RingAtDrop(drop)
	L := len(x.Coeffs)
	if L > maxScaleResidues {
		ctx.scaleOracleInto(r, x, out)
		return
	}
	sc := &ctx.scalers[drop]
	t := ctx.T
	moduli := r.Moduli
	for j := range out {
		var s0, s1, s2, accT uint64
		for i := 0; i < L; i++ {
			m := moduli[i]
			y := m.MulShoup(x.Coeffs[i][j], sc.hatInv[i], sc.hatInvShoup[i])
			accT = t.Add(accT, t.Mul(t.Reduce(y), sc.omegaT[i]))
			hi, lo := bits.Mul64(y, sc.thetaLo[i])
			var c uint64
			s0, c = bits.Add64(s0, lo, 0)
			s1, c = bits.Add64(s1, hi, c)
			s2 += c
			hi, lo = bits.Mul64(y, sc.thetaHi[i])
			s1, c = bits.Add64(s1, lo, 0)
			s2 += hi + c
		}
		// Round: add ½ (= 2^127 in the fixed-point fraction).
		var c uint64
		s1, c = bits.Add64(s1, 1<<63, 0)
		s2 += c
		if s1 == ^uint64(0) {
			// The one-sided truncation error (< 2^64 fraction ulps)
			// could carry across the integer boundary: resolve exactly.
			out[j] = ctx.roundCoeffOracle(r, x, j)
			continue
		}
		_ = s0 // participates only through its carry into s1
		out[j] = t.Add(accT, t.Reduce(s2))
	}
}

// roundCoeffOracle computes round(t·x_j/Q) mod t for a single
// coefficient by exact big.Int composition. Called only for the
// ~2^-64-probability ambiguity band of the fixed-point fast path.
func (ctx *Context) roundCoeffOracle(r *ring.Ring, x *ring.Poly, j int) uint64 {
	v := new(big.Int)
	r.CoeffBigintCentered(x, j, v)
	bigT := new(big.Int).SetUint64(ctx.T.Value)
	v.Mul(v, bigT)
	m := roundDiv(v, r.ModulusBig())
	m.Mod(m, bigT)
	return m.Uint64()
}

// scaleOracleInto is the big.Int reference scaling (the pre-RNS
// implementation): centered CRT composition followed by rational
// rounding per coefficient. It remains the correctness oracle for the
// fast path and the fallback for rings wider than maxScaleResidues.
func (ctx *Context) scaleOracleInto(r *ring.Ring, x *ring.Poly, out []uint64) {
	vals := make([]*big.Int, r.N)
	r.PolyToBigintCentered(x, vals)
	bigQ := r.ModulusBig()
	bt := new(big.Int).SetUint64(ctx.T.Value)
	num := new(big.Int)
	//lint:ignore-choco bigintloop reference oracle and wide-ring fallback, not the decrypt hot path
	for j, v := range vals {
		num.Mul(v, bt)
		m := roundDiv(num, bigQ)
		m.Mod(m, bt)
		out[j] = m.Uint64()
	}
}
