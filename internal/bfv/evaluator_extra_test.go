package bfv

import "testing"

func TestMulScalarMatchesPlainMultiply(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	tmod := kit.ctx.T.Value
	vals := []uint64{1, 2, 3, tmod - 1}
	ct, _ := kit.enc.EncryptUints(vals)
	out := kit.ev.MulScalar(ct, 7)
	got := kit.dec.DecryptUints(out)
	for i, v := range vals {
		if got[i] != v*7%tmod {
			t.Errorf("slot %d: got %d want %d", i, got[i], v*7%tmod)
		}
	}
	// Scalar multiply must be much gentler on the budget than a full
	// plaintext multiply with arbitrary slot values.
	pt, _ := kit.ecd.EncodeUints([]uint64{7, 7, 7, 7, 5})
	viaPlain := kit.ev.MulPlain(ct, kit.ev.PrepareMul(pt))
	bScalar := NoiseBudget(kit.ctx, kit.sk, out)
	bPlain := NoiseBudget(kit.ctx, kit.sk, viaPlain)
	if bScalar <= bPlain {
		t.Errorf("scalar multiply budget %d should beat plain multiply %d", bScalar, bPlain)
	}
}

func TestMulScalarZeroAnnihilates(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	ct, _ := kit.enc.EncryptUints([]uint64{5, 6, 7})
	got := kit.dec.DecryptUints(kit.ev.MulScalar(ct, 0))
	for i, v := range got[:8] {
		if v != 0 {
			t.Errorf("slot %d = %d after ×0", i, v)
		}
	}
}

func TestAddManyTreeSum(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	var cts []*Ciphertext
	for i := 1; i <= 9; i++ {
		ct, err := kit.enc.EncryptUints([]uint64{uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		cts = append(cts, ct)
	}
	sum, err := kit.ev.AddMany(cts)
	if err != nil {
		t.Fatal(err)
	}
	if got := kit.dec.DecryptUints(sum)[0]; got != 45 {
		t.Errorf("tree sum = %d, want 45", got)
	}
	if _, err := kit.ev.AddMany(nil); err == nil {
		t.Error("expected error for empty AddMany")
	}
	one, err := kit.ev.AddMany(cts[:1])
	if err != nil {
		t.Fatal(err)
	}
	if got := kit.dec.DecryptUints(one)[0]; got != 1 {
		t.Errorf("singleton AddMany = %d", got)
	}
}
