//go:build chocodebug

package bfv

import (
	"fmt"
	"strings"
	"testing"
)

func mustPanicBFV(t *testing.T, f func()) (msg string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected chocodebug panic, got normal return")
		}
		msg = fmt.Sprint(r)
	}()
	f()
	return
}

// TestChocodebugCorruptCiphertextPanics plants an out-of-range residue
// in a freshly encrypted ciphertext and checks the next evaluator op
// panics under -tags chocodebug.
func TestChocodebugCorruptCiphertextPanics(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	ct, err := kit.enc.EncryptUints([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ct.Value[0].Coeffs[0][0] = kit.ctx.RingQ.Moduli[0].Value // >= q_0
	msg := mustPanicBFV(t, func() { kit.ev.Add(ct, ct) })
	if !strings.Contains(msg, "chocodebug") || !strings.Contains(msg, "out of range") {
		t.Fatalf("unexpected panic message: %q", msg)
	}
}

// TestChocodebugBadDropPanics hands the evaluator a ciphertext whose
// Drop field is outside the modulus chain.
func TestChocodebugBadDropPanics(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	ct, err := kit.enc.EncryptUints([]uint64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	ct.Drop = kit.ctx.MaxDrop() + 1
	msg := mustPanicBFV(t, func() { kit.ev.MulScalar(ct, 3) })
	if !strings.Contains(msg, "chocodebug") || !strings.Contains(msg, "drop") {
		t.Fatalf("unexpected panic message: %q", msg)
	}
}

// TestChocodebugLevelMismatchPanics truncates a component polynomial's
// modulus chain without updating Drop — exactly the inconsistency a
// buggy modulus-switch or deserializer would introduce.
func TestChocodebugLevelMismatchPanics(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	ct, err := kit.enc.EncryptUints([]uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	ct.Value[1].Coeffs = ct.Value[1].Coeffs[:1]
	msg := mustPanicBFV(t, func() { kit.ev.Neg(ct) })
	if !strings.Contains(msg, "chocodebug") || !strings.Contains(msg, "residue rows") {
		t.Fatalf("unexpected panic message: %q", msg)
	}
}
