// Package bfv implements the Brakerski/Fan-Vercauteren somewhat
// homomorphic encryption scheme in full RNS form: key generation,
// asymmetric encryption (the kernel CHOCO-TACO accelerates), decryption,
// batched (SIMD) plaintext encoding, and the homomorphic evaluation
// operations of Table 1 of the paper — ciphertext/plaintext addition,
// plaintext multiplication, ciphertext multiplication with
// relinearization, and slot rotation via Galois automorphisms — plus an
// exact invariant-noise-budget meter.
//
// Following SEAL (the library the paper builds on), the last RNS prime
// is a "special" prime reserved for key switching: fresh ciphertexts and
// all homomorphic results live modulo the data primes only. This is what
// makes the paper's Table 3 ciphertext sizes come out to
// 2·N·(k-1)·8 bytes.
package bfv

import (
	"fmt"
	"math/big"

	"choco/internal/nt"
	"choco/internal/ring"
)

// Parameters defines a BFV parameter set: ring degree, RNS modulus
// chain (data primes followed by one key-switching prime), plaintext
// modulus, and error width.
type Parameters struct {
	LogN int
	// QBits holds the bit sizes of the data primes; PBits the bit size
	// of the key-switching special prime (0 disables key switching).
	QBits []int
	PBits int
	// TBits is the bit size of the plaintext modulus; the modulus is
	// generated as an NTT-friendly prime so that batching is available.
	TBits int
	Sigma float64
}

// N returns the ring degree.
func (p Parameters) N() int { return 1 << uint(p.LogN) }

// Slots returns the number of plaintext slots (equal to N for BFV
// batching over a 2×(N/2) matrix).
func (p Parameters) Slots() int { return p.N() }

// CiphertextBytes returns the serialized size in bytes of a fresh
// ciphertext: 2 polynomials × N coefficients × data residues × 8 bytes.
// These are the numbers in the paper's Table 3.
func (p Parameters) CiphertextBytes() int {
	return 2 * p.N() * len(p.QBits) * 8
}

// LogQ returns the total data-modulus width in bits.
func (p Parameters) LogQ() int {
	s := 0
	for _, b := range p.QBits {
		s += b
	}
	return s
}

// Validate performs a sanity check of the parameter set.
func (p Parameters) Validate() error {
	if p.LogN < 10 || p.LogN > 16 {
		return fmt.Errorf("bfv: logN=%d outside supported range [10,16]", p.LogN)
	}
	if len(p.QBits) == 0 {
		return fmt.Errorf("bfv: no data primes")
	}
	for _, b := range p.QBits {
		if b < p.LogN+2 || b > nt.MaxModulusBits {
			return fmt.Errorf("bfv: invalid data prime size %d", b)
		}
	}
	if p.PBits != 0 && (p.PBits < p.LogN+2 || p.PBits > nt.MaxModulusBits) {
		return fmt.Errorf("bfv: invalid special prime size %d", p.PBits)
	}
	if p.TBits < p.LogN+2 || p.TBits >= p.LogQ() {
		return fmt.Errorf("bfv: plaintext modulus size %d invalid for logQ=%d", p.TBits, p.LogQ())
	}
	if p.Sigma <= 0 {
		return fmt.Errorf("bfv: sigma must be positive")
	}
	return nil
}

// Context carries all precomputation for a parameter set. It is
// read-only after construction and safe for concurrent use.
type Context struct {
	Params Parameters

	// RingQ is the data-prime ring (fresh ciphertexts live here).
	// RingQP appends the special prime and hosts key-switching keys.
	// RingT is the one-modulus plaintext ring used by the encoder.
	// RingE is the extended basis used for exact tensor products.
	RingQ  *ring.Ring
	RingQP *ring.Ring
	RingT  *ring.Ring

	ringE *ring.Ring

	// T is the plaintext modulus; Delta = floor(Q/t).
	T             nt.Modulus
	BigQ          *big.Int
	BigP          *big.Int
	Delta         *big.Int
	deltaRNS      []uint64 // Delta mod q_i
	deltaRNSShoup []uint64 // Shoup companions of deltaRNS

	// Key-switch helpers: qTilde[i] = (Q/q_i)·[(Q/q_i)^-1 mod q_i]
	// (the CRT basis element, ≡1 mod q_i, ≡0 mod q_j), reduced into
	// the QP basis; pInv[i] = P^-1 mod q_i; pModQ[i] = P mod q_i.
	qTildeQP [][]uint64
	pInvQ    []uint64
	pModQ    []uint64

	// Batching index map: slot i lives at coefficient indexMap[i].
	indexMap []int

	// ringQDrop[d] is the data ring with d residues removed (for
	// modulus-switched ciphertexts); ringQDrop[0] == RingQ.
	ringQDrop []*ring.Ring

	// scalers[d] holds the RNS decryption-scaling constants for drop
	// level d (see decrypt_rns.go).
	scalers []rnsScaler
}

// RingAtDrop returns the data ring with drop residues removed.
func (ctx *Context) RingAtDrop(drop int) *ring.Ring {
	return ctx.ringQDrop[drop]
}

// MaxDrop returns how many residues modulus switching can remove while
// leaving one.
func (ctx *Context) MaxDrop() int { return len(ctx.RingQ.Moduli) - 1 }

// DroppedCiphertextBytes returns the wire payload of a degree-1
// ciphertext with drop residues removed.
func (ctx *Context) DroppedCiphertextBytes(drop int) int {
	return 2 * ctx.Params.N() * (len(ctx.Params.QBits) - drop) * 8
}

// NewContext generates primes and precomputes everything needed to
// operate under params.
func NewContext(params Parameters) (*Context, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	// Generate the RNS chain: data primes, special prime, extended
	// basis primes and the plaintext prime must all be distinct and
	// NTT-friendly for degree N.
	allBits := append([]int{}, params.QBits...)
	if params.PBits != 0 {
		allBits = append(allBits, params.PBits)
	}
	qpPrimes, err := nt.GenerateNTTPrimesVarBits(allBits, params.LogN)
	if err != nil {
		return nil, err
	}
	nData := len(params.QBits)

	ctx := &Context{Params: params}
	ctx.RingQP, err = ring.NewRing(params.LogN, qpPrimes)
	if err != nil {
		return nil, err
	}
	if params.PBits != 0 {
		ctx.RingQ = ctx.RingQP.AtLevel(nData - 1)
	} else {
		ctx.RingQ = ctx.RingQP
	}

	// Plaintext modulus: a TBits prime ≡ 1 mod 2N distinct from the
	// chain (bit sizes differ in practice; if equal, take extras).
	var tVal uint64
	for count := 1; count <= nData+2 && tVal == 0; count++ {
		tPrimes, err := nt.GenerateNTTPrimes(params.TBits, params.LogN, count)
		if err != nil {
			return nil, err
		}
		for _, cand := range tPrimes {
			used := false
			for _, q := range qpPrimes {
				if q == cand {
					used = true
					break
				}
			}
			if !used {
				tVal = cand
				break
			}
		}
	}
	if tVal == 0 {
		return nil, fmt.Errorf("bfv: could not find distinct plaintext prime")
	}
	ctx.T = nt.NewModulus(tVal)
	ctx.RingT, err = ring.NewRing(params.LogN, []uint64{tVal})
	if err != nil {
		return nil, err
	}

	ctx.BigQ = ctx.RingQ.ModulusBig()
	ctx.Delta = new(big.Int).Div(ctx.BigQ, new(big.Int).SetUint64(tVal))
	ctx.deltaRNS = make([]uint64, nData)
	ctx.deltaRNSShoup = make([]uint64, nData)
	//lint:ignore-choco bigintloop one-time context setup precomputation
	for i, m := range ctx.RingQ.Moduli {
		ctx.deltaRNS[i] = new(big.Int).Mod(ctx.Delta, new(big.Int).SetUint64(m.Value)).Uint64()
		ctx.deltaRNSShoup[i] = m.ShoupPrecomp(ctx.deltaRNS[i])
	}

	if params.PBits != 0 {
		pMod := ctx.RingQP.Moduli[nData]
		ctx.BigP = new(big.Int).SetUint64(pMod.Value)
		ctx.pInvQ = make([]uint64, nData)
		ctx.pModQ = make([]uint64, nData)
		for i, m := range ctx.RingQ.Moduli {
			pm := m.Reduce(pMod.Value)
			ctx.pModQ[i] = pm
			inv, ok := m.Inv(pm)
			if !ok {
				return nil, fmt.Errorf("bfv: special prime not invertible mod q_%d", i)
			}
			ctx.pInvQ[i] = inv
		}
		// qTilde_i over the QP basis.
		ctx.qTildeQP = make([][]uint64, nData)
		//lint:ignore-choco bigintloop one-time context setup precomputation
		for i := range ctx.qTildeQP {
			qi := new(big.Int).SetUint64(ctx.RingQ.Moduli[i].Value)
			hat := new(big.Int).Div(ctx.BigQ, qi)
			hatInv := new(big.Int).ModInverse(new(big.Int).Mod(hat, qi), qi)
			tilde := new(big.Int).Mul(hat, hatInv) // ≡1 mod q_i, ≡0 mod q_j
			row := make([]uint64, len(ctx.RingQP.Moduli))
			for j, m := range ctx.RingQP.Moduli {
				row[j] = new(big.Int).Mod(tilde, new(big.Int).SetUint64(m.Value)).Uint64()
			}
			ctx.qTildeQP[i] = row
		}
	}

	// Extended basis for exact ciphertext-ciphertext multiplication:
	// product must exceed N · Q² · 4.
	needBits := 2*ctx.RingQ.ModulusBits() + params.LogN + 3
	var eBits []int
	gotBits := 0
	for gotBits < needBits {
		eBits = append(eBits, 55)
		gotBits += 55
	}
	ePrimes, err := nt.GenerateNTTPrimes(55, params.LogN, len(eBits))
	if err != nil {
		return nil, err
	}
	ctx.ringE, err = ring.NewRing(params.LogN, ePrimes)
	if err != nil {
		return nil, err
	}

	ctx.ringQDrop = make([]*ring.Ring, nData)
	for d := 0; d < nData; d++ {
		ctx.ringQDrop[d] = ctx.RingQ.AtLevel(nData - 1 - d)
	}

	ctx.indexMap = buildIndexMap(params.LogN)
	ctx.scalers = buildRNSScalers(ctx)
	return ctx, nil
}

// buildIndexMap computes the slot-to-coefficient position map for the
// 2×(N/2) batching matrix, following SEAL's BatchEncoder: slot i of row
// r sits at the bit-reversed index of the (3^i)-th odd power position.
func buildIndexMap(logN int) []int {
	n := 1 << uint(logN)
	m := uint64(2 * n)
	rowSize := n / 2
	idx := make([]int, n)
	pos := uint64(1)
	gen := uint64(3)
	for i := 0; i < rowSize; i++ {
		index1 := int((pos - 1) >> 1)
		index2 := int((m - pos - 1) >> 1)
		idx[i] = bitrev(index1, logN)
		idx[rowSize+i] = bitrev(index2, logN)
		pos = pos * gen % m
	}
	return idx
}

func bitrev(x, bits int) int {
	r := 0
	for i := 0; i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// PresetA returns the paper's Table 3 parameter set A:
// BFV, N=8192, log2 q = 175 with residues {58,58,59}, log2 t = 23.
// The 59-bit prime serves as the key-switching prime, leaving 2 data
// residues and a 262,144-byte ciphertext.
func PresetA() Parameters {
	return Parameters{LogN: 13, QBits: []int{58, 58}, PBits: 59, TBits: 23, Sigma: 3.2}
}

// PresetB returns the paper's Table 3 parameter set B:
// BFV, N=4096, log2 q = 109 with residues {36,36,37}, log2 t = 18,
// 131,072-byte ciphertext.
func PresetB() Parameters {
	return Parameters{LogN: 12, QBits: []int{36, 36}, PBits: 37, TBits: 18, Sigma: 3.2}
}

// PresetTest returns a small parameter set for fast unit tests.
func PresetTest() Parameters {
	return Parameters{LogN: 11, QBits: []int{40, 40}, PBits: 41, TBits: 17, Sigma: 3.2}
}
