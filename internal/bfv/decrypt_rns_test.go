package bfv

import (
	"math/big"
	"testing"

	"choco/internal/sampling"
)

// TestRNSDecryptMatchesOracle pins exact equality between the
// RNS-native decryption and the big.Int reference oracle on fresh and
// modulus-switched ciphertexts at every preset and drop level.
func TestRNSDecryptMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		name   string
		params Parameters
	}{
		{"PresetTest", PresetTest()},
		{"PresetB", PresetB()},
		{"PresetA", PresetA()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			kit := newTestKit(t, tc.params)
			vals := rampUints(tc.params.N(), kit.ctx.T.Value)
			ct, err := kit.enc.EncryptUints(vals)
			if err != nil {
				t.Fatal(err)
			}
			for drop := 0; ; drop++ {
				comparePlain(t, kit, ct, "drop", drop)
				if drop == kit.ctx.MaxDrop() {
					break
				}
				next, err := kit.ev.ModSwitchDown(ct)
				if err != nil {
					t.Fatal(err)
				}
				ct = next
			}
		})
	}
}

// TestRNSDecryptDegreeTwoAndThree covers unrelinearized products:
// phase accumulates c2·s² (and c3·s³ for the degree-3 case built by
// tensoring again is not supported by Mul, so degree 2 + a rotated
// addend exercises the multi-term loop).
func TestRNSDecryptDegreeTwoAndThree(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	a, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), 50))
	if err != nil {
		t.Fatal(err)
	}
	b, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), 31))
	if err != nil {
		t.Fatal(err)
	}
	prod, err := kit.ev.Mul(a, b) // degree 2, no relinearization
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 2 {
		t.Fatalf("expected degree-2 product, got %d", prod.Degree())
	}
	comparePlain(t, kit, prod, "degree", 2)
}

func comparePlain(t *testing.T, kit *testKit, ct *Ciphertext, label string, v int) {
	t.Helper()
	fast := kit.dec.Decrypt(ct)
	oracle := kit.dec.DecryptOracle(ct)
	fr, or := fast.Poly.Coeffs[0], oracle.Poly.Coeffs[0]
	for j := range fr {
		if fr[j] != or[j] {
			t.Fatalf("%s=%d: coeff %d: RNS %d != oracle %d", label, v, j, fr[j], or[j])
		}
	}
}

// TestRNSScaleAdversarialBoundaries drives the scaler with phase
// polynomials crafted to sit within a few ulps of the rounding
// boundaries x = (2k+1)·Q/(2t), where round(t·x/Q) flips — the worst
// case for the fixed-point fraction. Every drop ring is exercised.
func TestRNSScaleAdversarialBoundaries(t *testing.T) {
	ctx, err := NewContext(PresetTest())
	if err != nil {
		t.Fatal(err)
	}
	src := sampling.NewSource([32]byte{13}, "rns-boundary")
	bigT := new(big.Int).SetUint64(ctx.T.Value)
	two := big.NewInt(2)
	for drop := 0; drop <= ctx.MaxDrop(); drop++ {
		r := ctx.RingAtDrop(drop)
		bigQ := r.ModulusBig()
		den := new(big.Int).Mul(bigT, two) // boundaries at (2k+1)·Q/(2t)
		vals := make([]*big.Int, r.N)
		for j := range vals {
			// Random odd multiple of Q/(2t), exact quotient, ±2 ulps.
			k := new(big.Int).SetUint64(uint64(src.Intn(int(ctx.T.Value))))
			k.Mul(k, two).Add(k, big.NewInt(1))
			v := new(big.Int).Mul(k, bigQ)
			v.Div(v, den)
			delta := int64(src.Intn(5)) - 2
			v.Add(v, big.NewInt(delta))
			v.Mod(v, bigQ)
			vals[j] = v
		}
		x := r.NewPoly()
		r.SetCoeffsBigint(vals, x)
		fast := make([]uint64, r.N)
		oracle := make([]uint64, r.N)
		ctx.scaleCenteredInto(x, drop, fast)
		ctx.scaleOracleInto(r, x, oracle)
		for j := range fast {
			if fast[j] != oracle[j] {
				t.Fatalf("drop %d coeff %d (val %v): RNS %d != oracle %d",
					drop, j, vals[j], fast[j], oracle[j])
			}
		}
	}
}

// TestRNSScaleAmbiguityFallback forces the all-ones top-fraction-word
// band by scanning a dense window of consecutive values around a
// boundary, proving the oracle fallback engages without divergence.
func TestRNSScaleAmbiguityFallback(t *testing.T) {
	ctx, err := NewContext(PresetTest())
	if err != nil {
		t.Fatal(err)
	}
	r := ctx.RingQ
	bigQ := r.ModulusBig()
	bigT := new(big.Int).SetUint64(ctx.T.Value)
	// Center the window on the first rounding boundary Q/(2t).
	base := new(big.Int).Div(bigQ, new(big.Int).Mul(bigT, big.NewInt(2)))
	vals := make([]*big.Int, r.N)
	half := int64(r.N / 2)
	for j := range vals {
		vals[j] = new(big.Int).Add(base, big.NewInt(int64(j)-half))
		vals[j].Mod(vals[j], bigQ)
	}
	x := r.NewPoly()
	r.SetCoeffsBigint(vals, x)
	fast := make([]uint64, r.N)
	oracle := make([]uint64, r.N)
	ctx.scaleCenteredInto(x, 0, fast)
	ctx.scaleOracleInto(r, x, oracle)
	for j := range fast {
		if fast[j] != oracle[j] {
			t.Fatalf("coeff %d (val %v): RNS %d != oracle %d", j, vals[j], fast[j], oracle[j])
		}
	}
}

// FuzzRNSScaleMatchesOracle fuzzes the scaler directly: arbitrary seed
// material becomes a pseudorandom phase polynomial at an arbitrary
// drop level, and the RNS fast path must agree with the big.Int oracle
// exactly.
func FuzzRNSScaleMatchesOracle(f *testing.F) {
	ctx, err := NewContext(PresetTest())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(0xdeadbeef), uint8(1))
	f.Add(^uint64(0), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, dropSel uint8) {
		drop := int(dropSel) % (ctx.MaxDrop() + 1)
		r := ctx.RingAtDrop(drop)
		var sd [32]byte
		for i := 0; i < 8; i++ {
			sd[i] = byte(seed >> (8 * i))
		}
		src := sampling.NewSource(sd, "rns-fuzz")
		x := r.NewPoly()
		for i, m := range r.Moduli {
			src.UniformMod(x.Coeffs[i], m.Value)
		}
		fast := make([]uint64, r.N)
		oracle := make([]uint64, r.N)
		ctx.scaleCenteredInto(x, drop, fast)
		ctx.scaleOracleInto(r, x, oracle)
		for j := range fast {
			if fast[j] != oracle[j] {
				t.Fatalf("drop %d coeff %d: RNS %d != oracle %d", drop, j, fast[j], oracle[j])
			}
		}
	})
}
