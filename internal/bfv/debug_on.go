//go:build chocodebug

package bfv

import "fmt"

// debugEnabled turns on the chocodebug assertion layer: evaluator
// entry points validate every ciphertext operand, so a corrupted or
// mis-leveled ciphertext panics at the op that receives it instead of
// decrypting to garbage.
const debugEnabled = true

// debugCheckCt validates the chocodebug ciphertext invariants:
//
//   - Drop lies in [0, MaxDrop];
//   - every component polynomial has exactly the residue rows of the
//     ring at that drop, each row of length N;
//   - every residue lies in [0, q_i).
func (ctx *Context) debugCheckCt(op string, cts ...*Ciphertext) {
	for ci, ct := range cts {
		if ct == nil {
			panic(fmt.Sprintf("bfv: chocodebug: %s operand %d is nil", op, ci))
		}
		if ct.Drop < 0 || ct.Drop > ctx.MaxDrop() {
			panic(fmt.Sprintf("bfv: chocodebug: %s operand %d has drop %d outside [0,%d]",
				op, ci, ct.Drop, ctx.MaxDrop()))
		}
		r := ctx.RingAtDrop(ct.Drop)
		for pi, p := range ct.Value {
			if p == nil {
				panic(fmt.Sprintf("bfv: chocodebug: %s operand %d component %d is nil", op, ci, pi))
			}
			if len(p.Coeffs) != len(r.Moduli) {
				panic(fmt.Sprintf("bfv: chocodebug: %s operand %d component %d has %d residue rows, drop %d implies %d",
					op, ci, pi, len(p.Coeffs), ct.Drop, len(r.Moduli)))
			}
			for i, row := range p.Coeffs {
				if len(row) != r.N {
					panic(fmt.Sprintf("bfv: chocodebug: %s operand %d component %d row %d has %d coefficients, want N=%d",
						op, ci, pi, i, len(row), r.N))
				}
				q := r.Moduli[i].Value
				for j, v := range row {
					if v >= q {
						panic(fmt.Sprintf("bfv: chocodebug: %s operand %d component %d residue [%d][%d] = %d out of range mod %d",
							op, ci, pi, i, j, v, q))
					}
				}
			}
		}
	}
}
