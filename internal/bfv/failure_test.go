package bfv

import (
	"testing"
)

// Failure-injection tests: the scheme must degrade the way RLWE theory
// says it does — wrong keys and tampering yield garbage (not silent
// "almost right" answers), and exhausting the noise budget corrupts
// decryption detectably.

func TestWrongSecretKeyDecryptsGarbage(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	other := NewKeyGenerator(kit.ctx, [32]byte{99}).GenSecretKey()
	wrongDec := NewDecryptor(kit.ctx, other)

	msg := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	ct, _ := kit.enc.EncryptUints(msg)
	got := wrongDec.DecryptUints(ct)
	matches := 0
	for i := range msg {
		if got[i] == msg[i] {
			matches++
		}
	}
	if matches > 2 {
		t.Errorf("wrong key recovered %d of %d slots", matches, len(msg))
	}
}

func TestTamperedCiphertextDecryptsGarbage(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	msg := []uint64{10, 20, 30, 40}
	ct, _ := kit.enc.EncryptUints(msg)
	// Flip one residue word of c1: RLWE mixing spreads the damage over
	// every slot.
	ct.Value[1].Coeffs[0][5] ^= 0xDEADBEEF
	got := kit.dec.DecryptUints(ct)
	matches := 0
	for i := range msg {
		if got[i] == msg[i] {
			matches++
		}
	}
	if matches > 1 {
		t.Errorf("tampering survived: %d of %d slots intact", matches, len(msg))
	}
}

func TestNoiseExhaustionCorruptsDecryption(t *testing.T) {
	// Chain plaintext multiplies until the budget hits zero; the
	// decrypted slots must diverge from the true product chain.
	kit := newTestKit(t, PresetTest())
	tmod := kit.ctx.T.Value
	vals := []uint64{3, 1, 2, 1}
	ct, _ := kit.enc.EncryptUints(vals)
	pt, _ := kit.ecd.EncodeUints([]uint64{2, 1, 1, 1})
	pm := kit.ev.PrepareMul(pt)

	want := append([]uint64(nil), vals...)
	exhausted := false
	for i := 0; i < 12; i++ {
		ct = kit.ev.MulPlain(ct, pm)
		want[0] = want[0] * 2 % tmod
		if NoiseBudget(kit.ctx, kit.sk, ct) == 0 {
			exhausted = true
			break
		}
	}
	if !exhausted {
		t.Skip("budget not exhausted within the multiply chain; parameters too roomy")
	}
	got := kit.dec.DecryptUints(ct)
	same := true
	for i := range want {
		if got[i] != want[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("decryption still exact after budget exhaustion — noise meter inconsistent")
	}
}

func TestEvaluatorWithoutKeysFailsCleanly(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	bare := NewEvaluator(kit.ctx, nil, nil)
	ct, _ := kit.enc.EncryptUints([]uint64{1})
	d2, err := bare.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Relinearize(d2); err == nil {
		t.Error("expected error without relinearization key")
	}
	if _, err := bare.RotateRows(ct, 1); err == nil {
		t.Error("expected error without Galois keys")
	}
}

func TestGaloisKeyFromDifferentSecretFails(t *testing.T) {
	// Rotating with keys generated for another secret must not produce
	// the correct rotation.
	kit := newTestKit(t, PresetTest())
	foreignKG := NewKeyGenerator(kit.ctx, [32]byte{77})
	foreignSK := foreignKG.GenSecretKey()
	foreignGalois := foreignKG.GenRotationKeys(foreignSK, 1)
	ev := NewEvaluator(kit.ctx, nil, foreignGalois)

	vals := []uint64{5, 6, 7, 8}
	ct, _ := kit.enc.EncryptUints(vals)
	rot, err := ev.RotateRows(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.dec.DecryptUints(rot)
	matches := 0
	for i := 0; i < 3; i++ {
		if got[i] == vals[i+1] {
			matches++
		}
	}
	if matches == 3 {
		t.Error("foreign Galois keys produced a correct rotation")
	}
}

func TestDeterministicKeysAndEncryptions(t *testing.T) {
	// Same seeds → identical keys and ciphertexts (the reproducibility
	// contract every experiment in this repo relies on).
	params := PresetTest()
	build := func() ([]uint64, *Ciphertext, *Context) {
		ctx, err := NewContext(params)
		if err != nil {
			t.Fatal(err)
		}
		kg := NewKeyGenerator(ctx, [32]byte{5})
		sk := kg.GenSecretKey()
		enc := NewEncryptor(ctx, kg.GenPublicKey(sk), [32]byte{6})
		ct, _ := enc.EncryptUints([]uint64{9, 8, 7})
		return NewDecryptor(ctx, sk).DecryptUints(ct), ct, ctx
	}
	d1, ct1, ctx1 := build()
	d2, ct2, _ := build()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("decryption mismatch across identical builds")
		}
	}
	if !ctx1.RingQ.Equal(ct1.Value[0], ct2.Value[0]) {
		t.Error("ciphertexts differ across identical seeds")
	}
}
