package bfv

import (
	"sync"

	"choco/internal/ring"
	"choco/internal/sampling"
)

// SecretKey is a ternary RLWE secret. The signed coefficient form is
// retained so the secret can be re-embedded in any modulus basis (data
// ring, key ring, extended ring).
type SecretKey struct {
	signed []int64
	// NTT-domain embeddings in the data and key rings.
	ValueQ  *ring.Poly
	ValueQP *ring.Poly
}

// PublicKey is an encryption of zero under the secret key:
// P0 = -(a·s + e), P1 = a, both in NTT domain over the data ring.
type PublicKey struct {
	P0 *ring.Poly
	P1 *ring.Poly
}

// SwitchingKey converts a ciphertext component keyed under some s' into
// one keyed under s. One (b, a) pair per data prime, in NTT domain over
// the key ring QP (GHS-style hybrid key switching with one special
// prime).
type SwitchingKey struct {
	B []*ring.Poly
	A []*ring.Poly

	// Lazily-built Shoup companions of B and A for the key-switching
	// inner product, where the key polynomials are the fixed operands.
	// Computed on first use so keys built by any path (keygen,
	// deserialization, tests) pick them up transparently.
	shoupOnce sync.Once
	bShoup    [][][]uint64
	aShoup    [][][]uint64
}

// shoup returns the per-digit Shoup companions of the key polynomials,
// computing them once against the key ring r.
func (swk *SwitchingKey) shoup(r *ring.Ring) (b, a [][][]uint64) {
	swk.shoupOnce.Do(func() {
		swk.bShoup = make([][][]uint64, len(swk.B))
		swk.aShoup = make([][][]uint64, len(swk.A))
		for i := range swk.B {
			swk.bShoup[i] = r.ShoupPolyPrecomp(swk.B[i])
			swk.aShoup[i] = r.ShoupPolyPrecomp(swk.A[i])
		}
	})
	return swk.bShoup, swk.aShoup
}

// RelinearizationKey switches s² → s after ciphertext multiplication.
type RelinearizationKey struct {
	Key *SwitchingKey
}

// GaloisKey switches φ_g(s) → s, enabling rotation by the automorphism
// with Galois element g.
type GaloisKey struct {
	GaloisElement uint64
	Key           *SwitchingKey
}

// KeyGenerator derives all key material deterministically from a seed.
type KeyGenerator struct {
	ctx  *Context
	seed [32]byte
}

// NewKeyGenerator returns a generator for the context using the seed
// for all randomness (distinct keys use distinct derivation labels).
func NewKeyGenerator(ctx *Context, seed [32]byte) *KeyGenerator {
	return &KeyGenerator{ctx: ctx, seed: seed}
}

// GenSecretKey samples a ternary secret.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	ctx := kg.ctx
	src := sampling.NewSource(kg.seed, "bfv-secret-key")
	sk := &SecretKey{signed: make([]int64, ctx.Params.N())}
	src.TernarySigned(sk.signed)
	sk.ValueQ = ctx.RingQ.NewPoly()
	ctx.RingQ.SetCoeffsInt64(sk.signed, sk.ValueQ)
	ctx.RingQ.NTT(sk.ValueQ)
	sk.ValueQP = ctx.RingQP.NewPoly()
	ctx.RingQP.SetCoeffsInt64(sk.signed, sk.ValueQP)
	ctx.RingQP.NTT(sk.ValueQP)
	return sk
}

// GenPublicKey creates the public encryption key for sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	ctx := kg.ctx
	r := ctx.RingQ
	src := sampling.NewSource(kg.seed, "bfv-public-key")

	a := r.NewPoly()
	for i, m := range r.Moduli {
		src.UniformMod(a.Coeffs[i], m.Value)
	}
	a.DeclareNTT() // uniform in either domain

	e := r.NewPoly()
	eSigned := make([]int64, ctx.Params.N())
	src.GaussianSigned(eSigned, ctx.Params.Sigma)
	r.SetCoeffsInt64(eSigned, e)
	r.NTT(e)

	p0 := r.NewPoly()
	r.MulCoeffs(a, sk.ValueQ, p0) // a·s
	r.Add(p0, e, p0)              // a·s + e
	r.Neg(p0, p0)                 // -(a·s + e)
	return &PublicKey{P0: p0, P1: a}
}

// genSwitchingKey builds a switching key for sPrime → s. sPrime is
// given in NTT form over the key ring.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, sPrime *ring.Poly, label string) *SwitchingKey {
	ctx := kg.ctx
	rQP := ctx.RingQP
	nData := len(ctx.RingQ.Moduli)
	src := sampling.NewSource(kg.seed, "bfv-switch-key-"+label)

	swk := &SwitchingKey{
		B: make([]*ring.Poly, nData),
		A: make([]*ring.Poly, nData),
	}
	eSigned := make([]int64, ctx.Params.N())
	//lint:ignore-choco bigintloop one-time key generation, not an online path
	for i := 0; i < nData; i++ {
		a := rQP.NewPoly()
		for j, m := range rQP.Moduli {
			src.UniformMod(a.Coeffs[j], m.Value)
		}
		a.DeclareNTT()

		e := rQP.NewPoly()
		src.GaussianSigned(eSigned, ctx.Params.Sigma)
		rQP.SetCoeffsInt64(eSigned, e)
		rQP.NTT(e)

		b := rQP.NewPoly()
		rQP.MulCoeffs(a, sk.ValueQP, b) // a·s
		rQP.Add(b, e, b)                // + e
		rQP.Neg(b, b)                   // -(a·s + e)

		// + P·qTilde_i·s' (the gadget term). P·qTilde_i is a fixed
		// integer; fold it in residue-wise.
		gadget := rQP.NewPoly()
		rQP.Copy(gadget, sPrime)
		for j, m := range rQP.Moduli {
			c := m.Mul(m.Reduce(ctx.qTildeQP[i][j]), m.Reduce(ctx.BigP.Uint64()))
			cs := m.ShoupPrecomp(c)
			row := gadget.Coeffs[j]
			for k := range row {
				row[k] = m.MulShoup(row[k], c, cs)
			}
		}
		rQP.Add(b, gadget, b)
		swk.B[i] = b
		swk.A[i] = a
	}
	return swk
}

// GenRelinearizationKey creates the s² → s switching key.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	ctx := kg.ctx
	s2 := ctx.RingQP.NewPoly()
	ctx.RingQP.MulCoeffs(sk.ValueQP, sk.ValueQP, s2)
	return &RelinearizationKey{Key: kg.genSwitchingKey(sk, s2, "relin")}
}

// GenGaloisKey creates the φ_g(s) → s switching key for one Galois
// element.
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, galEl uint64) *GaloisKey {
	ctx := kg.ctx
	// φ_g(s) computed in coefficient domain over QP.
	sCoeff := ctx.RingQP.NewPoly()
	ctx.RingQP.SetCoeffsInt64(sk.signed, sCoeff)
	phi := ctx.RingQP.NewPoly()
	ctx.RingQP.Automorphism(sCoeff, galEl, phi)
	ctx.RingQP.NTT(phi)
	return &GaloisKey{
		GaloisElement: galEl,
		Key:           kg.genSwitchingKey(sk, phi, "galois-"+itoa(galEl)),
	}
}

// GenRotationKeys creates Galois keys for the given row-rotation step
// counts (positive = left, negative = right) plus the row-swap key,
// returned as a map keyed by Galois element.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, steps ...int) map[uint64]*GaloisKey {
	ctx := kg.ctx
	keys := make(map[uint64]*GaloisKey)
	for _, s := range steps {
		g := ctx.RingQ.GaloisElementForRotation(s)
		if _, ok := keys[g]; !ok {
			keys[g] = kg.GenGaloisKey(sk, g)
		}
	}
	gSwap := ctx.RingQ.GaloisElementRowSwap()
	keys[gSwap] = kg.GenGaloisKey(sk, gSwap)
	return keys
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
