package bfv

import (
	"fmt"

	"choco/internal/ring"
)

// Plaintext is an encoded BFV plaintext: a degree-N polynomial with
// coefficients modulo t. Poly lives in the plaintext ring's coefficient
// domain.
type Plaintext struct {
	Poly *ring.Poly
}

// Encoder packs vectors of integers mod t into plaintext polynomials
// arranged as a 2×(N/2) matrix of slots, so that Galois automorphisms
// realize row rotations and the row swap (SEAL BatchEncoder semantics).
type Encoder struct {
	ctx *Context
}

// NewEncoder returns an encoder for the context.
func NewEncoder(ctx *Context) *Encoder { return &Encoder{ctx: ctx} }

// EncodeUints encodes up to N values (mod t) into a fresh plaintext.
// Missing trailing values are zero.
func (e *Encoder) EncodeUints(values []uint64) (*Plaintext, error) {
	n := e.ctx.Params.N()
	if len(values) > n {
		return nil, fmt.Errorf("bfv: %d values exceed %d slots", len(values), n)
	}
	pt := &Plaintext{Poly: e.ctx.RingT.NewPoly()}
	row := pt.Poly.Coeffs[0]
	t := e.ctx.T
	for i, v := range values {
		row[e.ctx.indexMap[i]] = t.Reduce(v)
	}
	// The slot values are evaluations; interpolate to coefficients.
	pt.Poly.DeclareNTT()
	e.ctx.RingT.INTT(pt.Poly)
	return pt, nil
}

// EncodeInts encodes signed values; negatives map to t - |v|.
func (e *Encoder) EncodeInts(values []int64) (*Plaintext, error) {
	t := e.ctx.T.Value
	u := make([]uint64, len(values))
	for i, v := range values {
		if v >= 0 {
			u[i] = uint64(v) % t
		} else {
			u[i] = t - uint64(-v)%t
			if u[i] == t {
				u[i] = 0
			}
		}
	}
	return e.EncodeUints(u)
}

// DecodeUints returns all N slot values of the plaintext.
func (e *Encoder) DecodeUints(pt *Plaintext) []uint64 {
	n := e.ctx.Params.N()
	tmp := e.ctx.RingT.CopyPoly(pt.Poly)
	e.ctx.RingT.NTT(tmp)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = tmp.Coeffs[0][e.ctx.indexMap[i]]
	}
	return out
}

// DecodeInts returns slot values centered into (-t/2, t/2].
func (e *Encoder) DecodeInts(pt *Plaintext) []int64 {
	u := e.DecodeUints(pt)
	t := e.ctx.T.Value
	half := t / 2
	out := make([]int64, len(u))
	for i, v := range u {
		if v > half {
			out[i] = -int64(t - v)
		} else {
			out[i] = int64(v)
		}
	}
	return out
}

// liftToQ embeds the plaintext coefficients (mod t) into the data ring
// as values in [0, t), coefficient domain.
func (e *Encoder) liftToQ(pt *Plaintext) *ring.Poly {
	out := e.ctx.RingQ.NewPoly()
	e.ctx.RingQ.SetCoeffsUint64(pt.Poly.Coeffs[0], out)
	return out
}

// liftToQScaled embeds Δ·m into the data ring (coefficient domain); the
// form added to ciphertexts by encryption and plaintext addition.
func (e *Encoder) liftToQScaled(pt *Plaintext) *ring.Poly {
	r := e.ctx.RingQ
	out := r.NewPoly()
	for i, m := range r.Moduli {
		d := e.ctx.deltaRNS[i]
		ds := m.ShoupPrecomp(d)
		src := pt.Poly.Coeffs[0]
		dst := out.Coeffs[i]
		for j := range dst {
			dst[j] = m.MulShoup(m.Reduce(src[j]), d, ds)
		}
	}
	return out
}
