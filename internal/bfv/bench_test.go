package bfv

import "testing"

// Package-level microbenchmarks at the paper's parameter presets; the
// Table 1 harness in internal/bench cross-checks the complexity
// classes, these give raw numbers per preset.

func benchKit(b *testing.B, params Parameters) *testKit {
	b.Helper()
	return newTestKit(b, params, 1)
}

func benchVec(n int, t uint64) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(i) % t
	}
	return v
}

func BenchmarkEncryptPresetB(b *testing.B) {
	kit := benchKit(b, PresetB())
	pt, _ := kit.ecd.EncodeUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kit.enc.Encrypt(pt)
	}
}

func BenchmarkDecryptPresetB(b *testing.B) {
	kit := benchKit(b, PresetB())
	ct, _ := kit.enc.EncryptUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kit.dec.Decrypt(ct)
	}
}

func BenchmarkEncryptPresetA(b *testing.B) {
	kit := benchKit(b, PresetA())
	pt, _ := kit.ecd.EncodeUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kit.enc.Encrypt(pt)
	}
}

func BenchmarkMulPlainPresetB(b *testing.B) {
	kit := benchKit(b, PresetB())
	ct, _ := kit.enc.EncryptUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	pt, _ := kit.ecd.EncodeUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	pm := kit.ev.PrepareMul(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kit.ev.MulPlain(ct, pm)
	}
}

func BenchmarkRotatePresetB(b *testing.B) {
	kit := benchKit(b, PresetB())
	ct, _ := kit.enc.EncryptUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kit.ev.RotateRows(ct, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulRelinPresetB(b *testing.B) {
	kit := benchKit(b, PresetB())
	ct, _ := kit.enc.EncryptUints(benchVec(64, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kit.ev.MulRelin(ct, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoiseBudgetMeter(b *testing.B) {
	kit := benchKit(b, PresetTest())
	ct, _ := kit.enc.EncryptUints(benchVec(64, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NoiseBudget(kit.ctx, kit.sk, ct)
	}
}
