package bfv

import "testing"

// Package-level microbenchmarks at the paper's parameter presets; the
// Table 1 harness in internal/bench cross-checks the complexity
// classes, these give raw numbers per preset.

func benchKit(b *testing.B, params Parameters) *testKit {
	b.Helper()
	return newTestKit(b, params, 1)
}

func benchVec(n int, t uint64) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(i) % t
	}
	return v
}

func BenchmarkEncryptPresetB(b *testing.B) {
	kit := benchKit(b, PresetB())
	pt, _ := kit.ecd.EncodeUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kit.enc.Encrypt(pt)
	}
}

func BenchmarkDecryptPresetB(b *testing.B) {
	kit := benchKit(b, PresetB())
	ct, _ := kit.enc.EncryptUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kit.dec.Decrypt(ct)
	}
}

func BenchmarkEncryptPresetA(b *testing.B) {
	kit := benchKit(b, PresetA())
	pt, _ := kit.ecd.EncodeUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kit.enc.Encrypt(pt)
	}
}

func BenchmarkMulPlainPresetB(b *testing.B) {
	kit := benchKit(b, PresetB())
	ct, _ := kit.enc.EncryptUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	pt, _ := kit.ecd.EncodeUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	pm := kit.ev.PrepareMul(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kit.ev.MulPlain(ct, pm)
	}
}

func BenchmarkRotatePresetB(b *testing.B) {
	kit := benchKit(b, PresetB())
	ct, _ := kit.enc.EncryptUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kit.ev.RotateRows(ct, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulRelinPresetB(b *testing.B) {
	kit := benchKit(b, PresetB())
	ct, _ := kit.enc.EncryptUints(benchVec(64, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kit.ev.MulRelin(ct, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoiseBudgetMeter(b *testing.B) {
	kit := benchKit(b, PresetTest())
	ct, _ := kit.enc.EncryptUints(benchVec(64, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NoiseBudget(kit.ctx, kit.sk, ct)
	}
}

// batchSteps is the ≥8-rotation batch the hoisting acceptance numbers
// are measured on: 8 distinct rotations of one ciphertext.
func batchSteps() []int { return []int{1, 2, 3, 4, 5, 6, 7, 8} }

// BenchmarkRotateBatch8SerialPresetB is the unhoisted baseline: each
// rotation pays its own RNS decomposition (RotateRows is the k=1 case
// of the hoisted path, so only the decomposition sharing differs).
func BenchmarkRotateBatch8SerialPresetB(b *testing.B) {
	kit := newTestKit(b, PresetB(), batchSteps()...)
	ct, _ := kit.enc.EncryptUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range batchSteps() {
			if _, err := kit.ev.RotateRows(ct, s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRotateBatch8HoistedPresetB shares one decomposition across
// the batch; the acceptance criterion is ≥1.5× over the serial loop.
func BenchmarkRotateBatch8HoistedPresetB(b *testing.B) {
	kit := newTestKit(b, PresetB(), batchSteps()...)
	ct, _ := kit.enc.EncryptUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kit.ev.RotateRowsHoisted(ct, batchSteps()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposePresetB(b *testing.B) {
	kit := newTestKit(b, PresetB(), 1)
	ct, _ := kit.enc.EncryptUints(benchVec(kit.ctx.Params.N(), kit.ctx.T.Value))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc, err := kit.ev.Decompose(ct)
		if err != nil {
			b.Fatal(err)
		}
		dc.Release()
	}
}
