package bfv

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// slotVec makes bounded random slot vectors generatable by
// testing/quick (values already reduced into a small range so products
// and sums stay well within t).
type slotVec struct{ v []uint64 }

func (slotVec) Generate(rand *rand.Rand, size int) reflect.Value {
	v := make([]uint64, 32)
	for i := range v {
		v[i] = uint64(rand.Intn(256))
	}
	return reflect.ValueOf(slotVec{v: v})
}

// propKit is shared across the property tests (context setup is the
// expensive part).
var propKitCache *testKit

func propKit(t *testing.T) *testKit {
	t.Helper()
	if propKitCache == nil {
		propKitCache = newTestKit(t, PresetTest(), 1, 2, 3)
	}
	return propKitCache
}

func TestQuickEncryptionIsAdditivelyHomomorphic(t *testing.T) {
	kit := propKit(t)
	tmod := kit.ctx.T.Value
	f := func(a, b slotVec) bool {
		cta, err := kit.enc.EncryptUints(a.v)
		if err != nil {
			return false
		}
		ctb, err := kit.enc.EncryptUints(b.v)
		if err != nil {
			return false
		}
		got := kit.dec.DecryptUints(kit.ev.Add(cta, ctb))
		for i := range a.v {
			if got[i] != (a.v[i]+b.v[i])%tmod {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulPlainDistributesOverAdd(t *testing.T) {
	// Enc(x)⊙(p+q) == Enc(x)⊙p + Enc(x)⊙q in every slot.
	kit := propKit(t)
	tmod := kit.ctx.T.Value
	f := func(x, p, q slotVec) bool {
		ct, err := kit.enc.EncryptUints(x.v)
		if err != nil {
			return false
		}
		sum := make([]uint64, len(p.v))
		for i := range sum {
			sum[i] = (p.v[i] + q.v[i]) % tmod
		}
		ptSum, _ := kit.ecd.EncodeUints(sum)
		ptP, _ := kit.ecd.EncodeUints(p.v)
		ptQ, _ := kit.ecd.EncodeUints(q.v)
		lhs := kit.dec.DecryptUints(kit.ev.MulPlain(ct, kit.ev.PrepareMul(ptSum)))
		viaP := kit.ev.MulPlain(ct, kit.ev.PrepareMul(ptP))
		viaQ := kit.ev.MulPlain(ct, kit.ev.PrepareMul(ptQ))
		rhs := kit.dec.DecryptUints(kit.ev.Add(viaP, viaQ))
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestQuickRotationComposition(t *testing.T) {
	// rotate(rotate(ct, a), b) decrypts to rotate-by-(a+b).
	kit := propKit(t)
	row := kit.ctx.Params.N() / 2
	f := func(x slotVec, aSeed, bSeed uint8) bool {
		a := 1 + int(aSeed)%2 // steps with available keys: 1..2
		b := 1 + int(bSeed)%2
		full := make([]uint64, kit.ctx.Params.N())
		copy(full, x.v)
		ct, err := kit.enc.EncryptUints(full)
		if err != nil {
			return false
		}
		r1, err := kit.ev.RotateRows(ct, a)
		if err != nil {
			return false
		}
		r2, err := kit.ev.RotateRows(r1, b)
		if err != nil {
			return false
		}
		got := kit.dec.DecryptUints(r2)
		for i := 0; i < row; i++ {
			src := (i + a + b) % row
			if got[i] != full[src] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func TestQuickCtMultiplyMatchesSlotProducts(t *testing.T) {
	kit := propKit(t)
	tmod := kit.ctx.T.Value
	f := func(a, b slotVec) bool {
		cta, err := kit.enc.EncryptUints(a.v)
		if err != nil {
			return false
		}
		ctb, err := kit.enc.EncryptUints(b.v)
		if err != nil {
			return false
		}
		prod, err := kit.ev.MulRelin(cta, ctb)
		if err != nil {
			return false
		}
		got := kit.dec.DecryptUints(prod)
		for i := range a.v {
			if got[i] != a.v[i]*b.v[i]%tmod {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestQuickEncodeDecodeIdentity(t *testing.T) {
	kit := propKit(t)
	f := func(x slotVec) bool {
		pt, err := kit.ecd.EncodeUints(x.v)
		if err != nil {
			return false
		}
		got := kit.ecd.DecodeUints(pt)
		for i := range x.v {
			if got[i] != x.v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickFreshCiphertextsDiffer(t *testing.T) {
	// Semantic-security smoke test: two encryptions of the same
	// message are different ciphertexts (randomized encryption).
	kit := propKit(t)
	f := func(x slotVec) bool {
		a, err := kit.enc.EncryptUints(x.v)
		if err != nil {
			return false
		}
		b, err := kit.enc.EncryptUints(x.v)
		if err != nil {
			return false
		}
		return !kit.ctx.RingQ.Equal(a.Value[0], b.Value[0]) &&
			!kit.ctx.RingQ.Equal(a.Value[1], b.Value[1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
