//go:build race

package bfv

// raceEnabled reports that the race detector is active; its
// instrumentation perturbs allocation counts, so AllocsPerRun
// assertions are skipped under -race.
const raceEnabled = true
