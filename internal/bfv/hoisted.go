package bfv

import (
	"fmt"

	"choco/internal/par"
	"choco/internal/ring"
)

// DecomposedCiphertext is the hoisted (Halevi–Shoup) form of a degree-1
// ciphertext: the per-data-prime RNS digits of c1, embedded into the QP
// basis and forward-NTT-transformed once. Every rotation of the same
// ciphertext normally pays that decomposition again inside keySwitch;
// holding it here lets a batch of k rotations pay it once, with each
// Galois element applied to the digits directly in the NTT domain (a
// slot permutation) before the switching-key inner product. Obtain with
// Evaluator.Decompose, rotate with RotateRowsDecomposed /
// RotateColumnsDecomposed, and call Release when done — the digit
// buffers come from the QP ring's scratch pool.
type DecomposedCiphertext struct {
	ct     *Ciphertext
	digits []*ring.Poly // one per data prime, over QP, NTT domain
	ctx    *Context
}

// Decompose performs the per-residue embedding and forward NTTs of
// ct's c1 once, returning the hoisted state shared by all subsequent
// rotations of ct. The ciphertext must be degree 1 at full modulus.
// The returned value references ct (it is not copied); it is safe for
// concurrent use by multiple rotations once built.
func (ev *Evaluator) Decompose(ct *Ciphertext) (*DecomposedCiphertext, error) {
	if debugEnabled {
		ev.ctx.debugCheckCt("Decompose", ct)
	}
	if len(ct.Value) != 2 {
		return nil, fmt.Errorf("bfv: rotation requires a degree-1 ciphertext")
	}
	if ct.Drop != 0 {
		return nil, fmt.Errorf("bfv: rotation requires a full-modulus ciphertext")
	}
	ctx := ev.ctx
	rQP := ctx.RingQP
	nData := len(ctx.RingQ.Moduli)
	digits := make([]*ring.Poly, nData)
	// Digits are independent; fan them out. Each NTT also fans its
	// residue rows internally when it is the only level running.
	par.For(nData, func(i int) {
		di := rQP.GetPoly()
		ev.embedDigit(ct.Value[1].Coeffs[i], i, di)
		rQP.NTT(di)
		digits[i] = di
	})
	return &DecomposedCiphertext{ct: ct, digits: digits, ctx: ctx}, nil
}

// Release returns the digit buffers to the ring's scratch pool. The
// DecomposedCiphertext must not be used afterwards.
func (dc *DecomposedCiphertext) Release() {
	for _, d := range dc.digits {
		dc.ctx.RingQP.PutPoly(d)
	}
	dc.digits = nil
}

// embedDigit embeds the i-th residue row of a mod-Q polynomial (an
// integer vector in [0, q_i)) into every residue of the QP basis. When
// q_i ≤ q_j the values are already reduced mod q_j and are copied
// verbatim; only smaller target moduli pay the reduction.
func (ev *Evaluator) embedDigit(src []uint64, i int, di *ring.Poly) {
	rQP := ev.ctx.RingQP
	qi := ev.ctx.RingQ.Moduli[i].Value
	for j, m := range rQP.Moduli {
		dst := di.Coeffs[j]
		if qi <= m.Value {
			copy(dst, src)
			continue
		}
		for k := range dst {
			dst[k] = m.Reduce(src[k])
		}
	}
}

// RotateRowsDecomposed rotates the two batched rows left by steps slots
// using the hoisted decomposition (negative steps rotate right). The
// result is byte-identical to RotateRows on the source ciphertext.
func (ev *Evaluator) RotateRowsDecomposed(dc *DecomposedCiphertext, steps int) (*Ciphertext, error) {
	if steps == 0 {
		return ev.ctx.CopyCt(dc.ct), nil
	}
	g := ev.ctx.RingQ.GaloisElementForRotation(steps)
	return ev.applyGaloisDecomposed(dc, g)
}

// RotateColumnsDecomposed swaps the two rows of the batching matrix
// using the hoisted decomposition.
func (ev *Evaluator) RotateColumnsDecomposed(dc *DecomposedCiphertext) (*Ciphertext, error) {
	return ev.applyGaloisDecomposed(dc, ev.ctx.RingQ.GaloisElementRowSwap())
}

// RotateRowsHoisted rotates one ciphertext by every step in steps,
// sharing a single decomposition across the whole batch and fanning the
// per-element key switches across the worker pool. Outputs are in step
// order and byte-identical to calling RotateRows once per step.
func (ev *Evaluator) RotateRowsHoisted(ct *Ciphertext, steps []int) ([]*Ciphertext, error) {
	dc, err := ev.Decompose(ct)
	if err != nil {
		return nil, err
	}
	defer dc.Release()
	outs := make([]*Ciphertext, len(steps))
	errs := make([]error, len(steps))
	par.For(len(steps), func(i int) {
		outs[i], errs[i] = ev.RotateRowsDecomposed(dc, steps[i])
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return outs, nil
}

// applyGaloisDecomposed runs one Galois element over the hoisted
// digits: fused NTT-domain automorphism + inner product against that
// element's switching key, shared INTT, divide by P, and the (cheap,
// table-driven) coefficient-domain automorphism of c0. Safe for
// concurrent calls on the same DecomposedCiphertext — the digits are
// read-only and all scratch is call-local. The output polynomials are
// drawn from the ring scratch pool; callers that own the result
// outright can return them with Context.RecycleCt.
func (ev *Evaluator) applyGaloisDecomposed(dc *DecomposedCiphertext, g uint64) (*Ciphertext, error) {
	gk, ok := ev.galois[g]
	if !ok {
		return nil, fmt.Errorf("bfv: missing Galois key for element %d", g)
	}
	ctx := ev.ctx
	rQP := ctx.RingQP
	rQ := ctx.RingQ

	acc0 := rQP.GetPoly()
	acc1 := rQP.GetPoly()
	acc0.DeclareNTT()
	acc1.DeclareNTT()
	bShoup, aShoup := gk.Key.shoup(rQP)
	for i, d := range dc.digits {
		rQP.AutomorphismNTTMulShoupAdd2(d, g, gk.Key.B[i], bShoup[i], acc0, gk.Key.A[i], aShoup[i], acc1)
	}
	rQP.INTT(acc0)
	rQP.INTT(acc1)
	d0, d1 := ev.modDownByP(acc0), ev.modDownByP(acc1)
	rQP.PutPoly(acc0)
	rQP.PutPoly(acc1)

	c0 := rQ.GetPoly()
	rQ.Automorphism(dc.ct.Value[0], g, c0)
	rQ.Add(c0, d0, c0)
	rQ.PutPoly(d0)
	return &Ciphertext{Value: []*ring.Poly{c0, d1}}, nil
}

// HoistedRotationSet is one item of a cross-request rotation batch: a
// ciphertext, the evaluator holding its session's Galois keys, and the
// rotation amounts it needs. Different sets may belong to different
// sessions — each brings its own evaluator — as long as every evaluator
// shares one parameter preset (one Context).
type HoistedRotationSet struct {
	Ev    *Evaluator
	Ct    *Ciphertext
	Steps []int
}

// RotateRowsHoistedBatch fuses the hoisted-rotation schedules of
// several ciphertexts into one pass: each set pays its decomposition
// (the per-residue embed + forward NTTs are inherently per-ciphertext —
// they transform c1, which differs per request), then every (set, step)
// key switch across the whole batch fans out over one flat worker-pool
// dispatch instead of len(sets) sequential ones. Per-set outputs are in
// step order and byte-identical to calling RotateRowsHoisted per set.
func RotateRowsHoistedBatch(sets []HoistedRotationSet) ([][]*Ciphertext, error) {
	outs := make([][]*Ciphertext, len(sets))
	dcs := make([]*DecomposedCiphertext, len(sets))
	defer func() {
		for _, dc := range dcs {
			if dc != nil {
				dc.Release()
			}
		}
	}()
	// The decompositions run serially here: each one already fans its
	// digit NTTs across the pool, so stacking them would only queue.
	total := 0
	for i, set := range sets {
		dc, err := set.Ev.Decompose(set.Ct)
		if err != nil {
			return nil, err
		}
		dcs[i] = dc
		outs[i] = make([]*Ciphertext, len(set.Steps))
		total += len(set.Steps)
	}
	// Flatten the (set, step) pairs so the pool sees the whole batch at
	// once: with more workers than any one set has steps, rotations from
	// different requests overlap instead of serializing per request.
	type job struct{ set, idx int }
	jobs := make([]job, 0, total)
	for i, set := range sets {
		for j := range set.Steps {
			jobs = append(jobs, job{i, j})
		}
	}
	errs := make([]error, len(jobs))
	par.For(len(jobs), func(k int) {
		jb := jobs[k]
		set := sets[jb.set]
		outs[jb.set][jb.idx], errs[k] = set.Ev.RotateRowsDecomposed(dcs[jb.set], set.Steps[jb.idx])
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return outs, nil
}
