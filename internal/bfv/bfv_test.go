package bfv

import (
	"testing"
)

type testKit struct {
	ctx *Context
	sk  *SecretKey
	pk  *PublicKey
	enc *Encryptor
	dec *Decryptor
	ecd *Encoder
	ev  *Evaluator
}

func newTestKit(t testing.TB, params Parameters, rotSteps ...int) *testKit {
	t.Helper()
	ctx, err := NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, [32]byte{1, 2, 3})
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	relin := kg.GenRelinearizationKey(sk)
	var galois map[uint64]*GaloisKey
	if len(rotSteps) > 0 {
		galois = kg.GenRotationKeys(sk, rotSteps...)
	}
	return &testKit{
		ctx: ctx,
		sk:  sk,
		pk:  pk,
		enc: NewEncryptor(ctx, pk, [32]byte{9}),
		dec: NewDecryptor(ctx, sk),
		ecd: NewEncoder(ctx),
		ev:  NewEvaluator(ctx, relin, galois),
	}
}

func rampUints(n int, mod uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i) % mod
	}
	return out
}

func TestParametersValidate(t *testing.T) {
	good := PresetTest()
	if err := good.Validate(); err != nil {
		t.Errorf("PresetTest invalid: %v", err)
	}
	bad := good
	bad.LogN = 5
	if err := bad.Validate(); err == nil {
		t.Error("expected error for tiny logN")
	}
	bad = good
	bad.QBits = nil
	if err := bad.Validate(); err == nil {
		t.Error("expected error for empty Q chain")
	}
	bad = good
	bad.TBits = 200
	if err := bad.Validate(); err == nil {
		t.Error("expected error for oversized t")
	}
	bad = good
	bad.Sigma = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for sigma 0")
	}
}

func TestPresetCiphertextSizes(t *testing.T) {
	// Table 3 of the paper.
	if got := PresetA().CiphertextBytes(); got != 262144 {
		t.Errorf("Preset A ciphertext = %d bytes, want 262144", got)
	}
	if got := PresetB().CiphertextBytes(); got != 131072 {
		t.Errorf("Preset B ciphertext = %d bytes, want 131072", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	n := kit.ctx.Params.N()
	values := rampUints(n, kit.ctx.T.Value)
	pt, err := kit.ecd.EncodeUints(values)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.ecd.DecodeUints(pt)
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], values[i])
		}
	}
}

func TestEncodeTooManyValues(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	_, err := kit.ecd.EncodeUints(make([]uint64, kit.ctx.Params.N()+1))
	if err == nil {
		t.Error("expected error for too many values")
	}
}

func TestEncodeIntsSigned(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	in := []int64{-5, 4, 0, -1, 7, -100}
	pt, err := kit.ecd.EncodeInts(in)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.ecd.DecodeInts(pt)
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], in[i])
		}
	}
}

func TestEncryptDecrypt(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	values := rampUints(kit.ctx.Params.N(), kit.ctx.T.Value)
	ct, err := kit.enc.EncryptUints(values)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.dec.DecryptUints(ct)
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], values[i])
		}
	}
	if kit.enc.OpCount != 1 || kit.dec.OpCount != 1 {
		t.Errorf("op counts enc=%d dec=%d, want 1,1", kit.enc.OpCount, kit.dec.OpCount)
	}
}

func TestFreshNoiseBudgetPositive(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	ct, _ := kit.enc.EncryptUints([]uint64{1, 2, 3})
	budget := NoiseBudget(kit.ctx, kit.sk, ct)
	if budget < 20 {
		t.Errorf("fresh budget = %d bits, expected a healthy margin", budget)
	}
	t.Logf("fresh noise budget: %d bits", budget)
}

func TestHomomorphicAddSub(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	tmod := kit.ctx.T.Value
	a := []uint64{1, 2, 3, tmod - 1}
	b := []uint64{10, 20, 30, 1}
	cta, _ := kit.enc.EncryptUints(a)
	ctb, _ := kit.enc.EncryptUints(b)
	sum := kit.dec.DecryptUints(kit.ev.Add(cta, ctb))
	diff := kit.dec.DecryptUints(kit.ev.Sub(cta, ctb))
	neg := kit.dec.DecryptUints(kit.ev.Neg(cta))
	for i := range a {
		if sum[i] != (a[i]+b[i])%tmod {
			t.Errorf("add slot %d: got %d want %d", i, sum[i], (a[i]+b[i])%tmod)
		}
		if diff[i] != (a[i]+tmod-b[i])%tmod {
			t.Errorf("sub slot %d: got %d want %d", i, diff[i], (a[i]+tmod-b[i])%tmod)
		}
		if neg[i] != (tmod-a[i])%tmod {
			t.Errorf("neg slot %d: got %d want %d", i, neg[i], (tmod-a[i])%tmod)
		}
	}
}

func TestPlainAddSubMul(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	tmod := kit.ctx.T.Value
	a := []uint64{5, 6, 7, 8}
	p := []uint64{3, 0, 100, tmod - 2}
	ct, _ := kit.enc.EncryptUints(a)
	pt, _ := kit.ecd.EncodeUints(p)

	add := kit.dec.DecryptUints(kit.ev.AddPlain(ct, pt))
	sub := kit.dec.DecryptUints(kit.ev.SubPlain(ct, pt))
	mul := kit.dec.DecryptUints(kit.ev.MulPlain(ct, kit.ev.PrepareMul(pt)))
	for i := range a {
		if add[i] != (a[i]+p[i])%tmod {
			t.Errorf("addplain slot %d: got %d want %d", i, add[i], (a[i]+p[i])%tmod)
		}
		if sub[i] != (a[i]+tmod-p[i])%tmod {
			t.Errorf("subplain slot %d: got %d want %d", i, sub[i], (a[i]+tmod-p[i])%tmod)
		}
		want := a[i] * p[i] % tmod
		if mul[i] != want {
			t.Errorf("mulplain slot %d: got %d want %d", i, mul[i], want)
		}
	}
	// Slots beyond the encoded prefix are zero.
	for i := 4; i < 8; i++ {
		if mul[i] != 0 {
			t.Errorf("mulplain slot %d: got %d want 0", i, mul[i])
		}
	}
}

func TestCiphertextMulRelin(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	tmod := kit.ctx.T.Value
	a := []uint64{2, 3, 5, 7, 0, 1}
	b := []uint64{11, 13, 17, 19, 23, 1}
	cta, _ := kit.enc.EncryptUints(a)
	ctb, _ := kit.enc.EncryptUints(b)

	prod, err := kit.ev.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 2 {
		t.Fatalf("tensor degree = %d, want 2", prod.Degree())
	}
	// Degree-2 ciphertexts decrypt directly.
	got := kit.dec.DecryptUints(prod)
	for i := range a {
		if got[i] != a[i]*b[i]%tmod {
			t.Fatalf("deg-2 slot %d: got %d want %d", i, got[i], a[i]*b[i]%tmod)
		}
	}
	relin, err := kit.ev.Relinearize(prod)
	if err != nil {
		t.Fatal(err)
	}
	if relin.Degree() != 1 {
		t.Fatalf("relin degree = %d, want 1", relin.Degree())
	}
	got = kit.dec.DecryptUints(relin)
	for i := range a {
		if got[i] != a[i]*b[i]%tmod {
			t.Fatalf("relin slot %d: got %d want %d", i, got[i], a[i]*b[i]%tmod)
		}
	}
	if b := NoiseBudget(kit.ctx, kit.sk, relin); b <= 0 {
		t.Errorf("noise budget exhausted after one multiply: %d", b)
	}
}

func TestMulRequiresDegreeOne(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	ct, _ := kit.enc.EncryptUints([]uint64{1})
	d2, _ := kit.ev.Mul(ct, ct)
	if _, err := kit.ev.Mul(d2, ct); err == nil {
		t.Error("expected error multiplying degree-2 ciphertext")
	}
	if _, err := kit.ev.Relinearize(ct); err == nil {
		t.Error("expected error relinearizing degree-1 ciphertext")
	}
}

func TestRotateRows(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1, 2, -1)
	n := kit.ctx.Params.N()
	row := n / 2
	values := rampUints(n, kit.ctx.T.Value)
	ct, _ := kit.enc.EncryptUints(values)

	for _, steps := range []int{1, 2, -1} {
		rot, err := kit.ev.RotateRows(ct, steps)
		if err != nil {
			t.Fatal(err)
		}
		got := kit.dec.DecryptUints(rot)
		for i := 0; i < n; i++ {
			r := i / row
			j := i % row
			src := r*row + ((j+steps)%row+row)%row
			if got[i] != values[src] {
				t.Fatalf("steps=%d slot %d: got %d want %d (src %d)", steps, i, got[i], values[src], src)
			}
		}
	}
}

func TestRotateZeroStepsIsCopy(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	ct, _ := kit.enc.EncryptUints([]uint64{1, 2, 3})
	rot, err := kit.ev.RotateRows(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.dec.DecryptUints(rot)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Error("rotation by 0 altered the ciphertext")
	}
}

func TestRotateColumnsSwapsRows(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	n := kit.ctx.Params.N()
	row := n / 2
	values := rampUints(n, kit.ctx.T.Value)
	ct, _ := kit.enc.EncryptUints(values)
	sw, err := kit.ev.RotateColumns(ct)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.dec.DecryptUints(sw)
	for i := 0; i < n; i++ {
		src := (i + row) % n
		if got[i] != values[src] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], values[src])
		}
	}
}

func TestRotationMissingKey(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	ct, _ := kit.enc.EncryptUints([]uint64{1})
	if _, err := kit.ev.RotateRows(ct, 5); err == nil {
		t.Error("expected error for missing Galois key")
	}
}

func TestNoiseBudgetDecreasesMonotonically(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	ct, _ := kit.enc.EncryptUints([]uint64{1, 2, 3})
	fresh := NoiseBudget(kit.ctx, kit.sk, ct)
	rot, _ := kit.ev.RotateRows(ct, 1)
	afterRot := NoiseBudget(kit.ctx, kit.sk, rot)
	sq, _ := kit.ev.MulRelin(ct, ct)
	afterMul := NoiseBudget(kit.ctx, kit.sk, sq)
	t.Logf("budget: fresh=%d rotate=%d mul=%d", fresh, afterRot, afterMul)
	if afterRot > fresh {
		t.Error("rotation increased the budget")
	}
	if afterMul >= afterRot {
		t.Error("multiplication should cost more budget than rotation")
	}
	// The paper's rotational-redundancy argument: a rotation costs only
	// a few bits of budget. At these deliberately small test parameters
	// the key-switching term is relatively larger than at the paper's
	// presets (where the cost is 2-3 bits, reproduced in Table 4 of
	// EXPERIMENTS.md); assert it stays an order of magnitude below the
	// multiplication cost.
	if fresh-afterRot >= fresh-afterMul {
		t.Errorf("rotation cost %d bits not well below multiply cost %d bits",
			fresh-afterRot, fresh-afterMul)
	}
}

func TestEncryptZero(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	ct := kit.enc.EncryptZero()
	for i, v := range kit.dec.DecryptUints(ct) {
		if v != 0 {
			t.Fatalf("slot %d of zero encryption = %d", i, v)
		}
	}
}

func TestAdditiveHomomorphismDeep(t *testing.T) {
	// Sum 64 fresh encryptions of 1; additions are cheap in noise.
	kit := newTestKit(t, PresetTest())
	acc, _ := kit.enc.EncryptUints([]uint64{1})
	for i := 0; i < 63; i++ {
		ct, _ := kit.enc.EncryptUints([]uint64{1})
		acc = kit.ev.Add(acc, ct)
	}
	got := kit.dec.DecryptUints(acc)
	if got[0] != 64 {
		t.Errorf("sum of 64 ones = %d", got[0])
	}
	if b := NoiseBudget(kit.ctx, kit.sk, acc); b <= 0 {
		t.Errorf("budget exhausted by additions: %d", b)
	}
}
