//go:build !race

package bfv

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
