//go:build !chocodebug

package bfv

// debugEnabled gates the chocodebug assertion layer (see
// internal/ring/debug_on.go); compile-time false in the default build.
const debugEnabled = false

func (ctx *Context) debugCheckCt(op string, cts ...*Ciphertext) {}
