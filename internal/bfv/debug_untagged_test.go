//go:build !chocodebug

package bfv

import "testing"

// Twin of debug_tagged_test.go: the corruption that panics under
// -tags chocodebug must not panic in the default build — the evaluator
// computes a wrong result, but the assertion layer is strictly
// additive.
func TestCorruptCiphertextSilentWithoutChocodebug(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	ct, err := kit.enc.EncryptUints([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ct.Value[0].Coeffs[0][0] = kit.ctx.RingQ.Moduli[0].Value
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("untagged build panicked on corrupted ciphertext: %v", r)
		}
	}()
	_ = kit.ev.Add(ct, ct)
}
