package bfv

import (
	"fmt"

	"choco/internal/ring"
)

// Triple-hoisted key switching (DESIGN.md §13). The classic hoisted
// rotation path (hoisted.go) shares one digit decomposition across a
// batch, but every Galois element still pays its own inverse NTT over
// QP and its own divide-by-P. The lazy machinery here removes both:
//
//   - a QPAccumulator keeps the switching-key inner products of many
//     Galois elements summed in the extended basis QP, in the NTT
//     domain, so a whole giant-step sum pays one shared INTT and one
//     mod-down at FinalizeModDown;
//   - RotateRowsLazyNTT emits a rotation directly in the NTT domain of
//     the data ring, skipping the full-poly INTT → modDown → NTT round
//     trip a materialized rotation would pay before entering an NTT-
//     domain plaintext-multiply accumulation.
//
// Everything is byte-identical to the materialized path. The one
// nonlinear step in key switching is the centered rounding inside
// modDownByP; the accumulator keeps it exact by draining each
// element's special-prime row immediately (one single-row INTT),
// folding the centered representative into a running correction
// polynomial, and applying Σ corrections once at finalize:
//
//	Σᵢ round(xᵢ/P) = (Σᵢ xᵢ^(Q) − Σᵢ cᵢ) · P⁻¹ (mod q)
//
// where cᵢ is the centered remainder of xᵢ's P-row — exactly the value
// the per-element path subtracts, so the sums agree coefficient for
// coefficient.

// NTTCiphertext is a degree-1 ciphertext resident in the NTT domain of
// the data ring, the operand form of an NTT-domain multiply-accumulate
// chain (MulPlainAcc). Its polynomials come from the ring scratch pool;
// FromNTT consumes them into a regular ciphertext.
type NTTCiphertext struct {
	Value []*ring.Poly // len 2, NTT domain over Q
}

// ToNTT lifts a full-modulus degree-1 ciphertext into the NTT domain
// (copying — ct is not modified).
func (ev *Evaluator) ToNTT(ct *Ciphertext) *NTTCiphertext {
	if debugEnabled {
		ev.ctx.debugCheckCt("ToNTT", ct)
	}
	if len(ct.Value) != 2 || ct.Drop != 0 {
		panic("bfv: ToNTT requires a degree-1 full-modulus ciphertext")
	}
	rQ := ev.ctx.RingQ
	out := &NTTCiphertext{Value: make([]*ring.Poly, 2)}
	for i, p := range ct.Value {
		c := rQ.GetPoly()
		rQ.Copy(c, p)
		rQ.NTT(c)
		out.Value[i] = c
	}
	return out
}

// NewNTTAccumulator returns a zeroed NTT-domain ciphertext accumulator
// for MulPlainAcc chains. Consume with FromNTT or discard with Recycle.
func (ev *Evaluator) NewNTTAccumulator() *NTTCiphertext {
	rQ := ev.ctx.RingQ
	c0 := rQ.GetPoly()
	c1 := rQ.GetPoly()
	c0.DeclareNTT() // the all-zero polynomial is valid in either domain
	c1.DeclareNTT()
	return &NTTCiphertext{Value: []*ring.Poly{c0, c1}}
}

// MulPlainAcc accumulates acc += x ⊙ pm entirely in the NTT domain.
// A chain of MulPlainAcc calls followed by FromNTT is byte-identical
// to the same chain of MulPlain + Add on materialized ciphertexts: the
// inverse NTT is linear, so transforming the sum once equals summing
// the per-term transforms.
func (ev *Evaluator) MulPlainAcc(acc, x *NTTCiphertext, pm *PlaintextMul) {
	rQ := ev.ctx.RingQ
	for i := range acc.Value {
		rQ.MulCoeffsAdd(x.Value[i], pm.NTT, acc.Value[i])
	}
}

// FromNTT transforms acc back to the coefficient domain and returns it
// as a regular ciphertext, consuming acc (its polynomials move into
// the result; acc must not be used afterwards).
func (ev *Evaluator) FromNTT(acc *NTTCiphertext) *Ciphertext {
	rQ := ev.ctx.RingQ
	for _, p := range acc.Value {
		rQ.INTT(p)
	}
	out := &Ciphertext{Value: acc.Value}
	acc.Value = nil
	return out
}

// Recycle returns an NTT ciphertext's buffers to the scratch pool.
func (nc *NTTCiphertext) Recycle(ctx *Context) {
	for _, p := range nc.Value {
		ctx.RingQ.PutPoly(p)
	}
	nc.Value = nil
}

// RecycleCt returns a full-modulus ciphertext's component buffers to
// the data ring's scratch pool. Only for ciphertexts the caller owns
// outright (kernel intermediates); the ciphertext must not be used
// afterwards. Dropped-modulus components are silently skipped (PutPoly
// rejects shape mismatches).
func (ctx *Context) RecycleCt(ct *Ciphertext) {
	for _, p := range ct.Value {
		ctx.RingQ.PutPoly(p)
	}
	ct.Value = nil
}

// RecycleCt is the evaluator-side entry point for callers that do not
// hold the Context (kernel code in internal/core).
func (ev *Evaluator) RecycleCt(ct *Ciphertext) { ev.ctx.RecycleCt(ct) }

// RecycleNTT returns an NTT ciphertext's buffers to the scratch pool.
func (ev *Evaluator) RecycleNTT(nc *NTTCiphertext) { nc.Recycle(ev.ctx) }

// RotateRowsLazyNTT rotates the decomposed ciphertext by steps and
// returns the result directly in the NTT domain of the data ring —
// byte-identical to ToNTT(RotateRowsDecomposed(dc, steps)) but without
// ever materializing the coefficient-domain rotation: the switching-key
// inner product uses the fused NTT-domain gather, and the divide-by-P
// happens per residue row in the evaluation domain (nttModDownByP),
// paying one single-row INTT for the special prime and one forward NTT
// per data row of the rounding correction instead of a full-poly INTT
// plus a forward NTT of both output components.
func (ev *Evaluator) RotateRowsLazyNTT(dc *DecomposedCiphertext, steps int) (*NTTCiphertext, error) {
	if steps == 0 {
		return ev.ToNTT(dc.ct), nil
	}
	g := ev.ctx.RingQ.GaloisElementForRotation(steps)
	gk, ok := ev.galois[g]
	if !ok {
		return nil, fmt.Errorf("bfv: missing Galois key for element %d", g)
	}
	ctx := ev.ctx
	rQP := ctx.RingQP
	rQ := ctx.RingQ

	acc0 := rQP.GetPoly()
	acc1 := rQP.GetPoly()
	acc0.DeclareNTT()
	acc1.DeclareNTT()
	bShoup, aShoup := gk.Key.shoup(rQP)
	for i, d := range dc.digits {
		rQP.AutomorphismNTTMulShoupAdd2(d, g, gk.Key.B[i], bShoup[i], acc0, gk.Key.A[i], aShoup[i], acc1)
	}
	d0 := ev.nttModDownByP(acc0)
	d1 := ev.nttModDownByP(acc1)
	rQP.PutPoly(acc0)
	rQP.PutPoly(acc1)

	// c0's automorphism is the cheap table-driven coefficient gather;
	// its forward NTT replaces the one ToNTT would have paid.
	c0 := rQ.GetPoly()
	rQ.Automorphism(dc.ct.Value[0], g, c0)
	rQ.NTT(c0)
	rQ.Add(d0, c0, d0)
	rQ.PutPoly(c0)
	return &NTTCiphertext{Value: []*ring.Poly{d0, d1}}, nil
}

// nttModDownByP maps x mod QP (NTT domain) to round(x/P) mod Q, still
// in the NTT domain. Byte-identical, row for row, to
// NTT(modDownByP(INTT(x))): per data row i the coefficient-domain
// identity dst = (src − c)·P⁻¹ becomes NTT(dst) = (NTT(src) − NTT(c))·P⁻¹
// because the NTT is linear and commutes with multiplication by the
// scalar P⁻¹. Only the rounding correction c needs the coefficient
// domain — one single-row INTT of the special-prime row to read the
// centered remainders, one single-row forward NTT per data row to lift
// them back. x's special-prime row is consumed (left in the
// coefficient domain); the caller is expected to release x.
func (ev *Evaluator) nttModDownByP(x *ring.Poly) *ring.Poly {
	ctx := ev.ctx
	rQ := ctx.RingQ
	rQP := ctx.RingQP
	nData := len(rQ.Moduli)
	pMod := rQP.Moduli[nData]
	p := pMod.Value
	halfP := p >> 1

	xp := x.Coeffs[nData]
	rQP.NTTInverseRow(nData, xp)

	out := rQ.GetPoly()
	out.DeclareNTT()
	for i, m := range rQ.Moduli {
		pi := ctx.pInvQ[i]
		pis := m.ShoupPrecomp(pi)
		pModQ := m.Reduce(p)
		dst := out.Coeffs[i]
		src := x.Coeffs[i][:len(dst)]
		xr := xp[:len(dst)]
		// Centered remainder of the P-row, reduced mod q_i — exactly
		// modDownByP's correction — then lifted to the NTT domain.
		for k := range dst {
			t := xr[k]
			c := m.Reduce(t)
			if t > halfP {
				c = m.Sub(c, pModQ)
			}
			dst[k] = c
		}
		rQ.NTTForwardRow(i, dst)
		for k := range dst {
			dst[k] = m.MulShoup(m.Sub(src[k], dst[k]), pi, pis)
		}
	}
	return out
}

// QPAccumulator sums the key-switch products of many Galois elements in
// the extended basis QP so the whole sum pays a single INTT + mod-down
// (FinalizeModDown) instead of one per element. Obtain with
// NewQPAccumulator; feed with AccumulateQP (lazy rotations) and AddLazy
// (unrotated terms); combine per-worker partials with Merge. All
// arithmetic is exact modular accumulation, so any grouping of the same
// terms finalizes to bit-identical polynomials.
type QPAccumulator struct {
	ctx *Context

	// Σ switching-key inner products over QP, NTT domain. The data rows
	// accumulate across elements; the special-prime row is per-element
	// scratch, drained into corr and re-zeroed by each AccumulateQP.
	acc0, acc1 *ring.Poly

	// Σ centered remainders of each element's special-prime row, mod Q,
	// coefficient domain — the rounding corrections FinalizeModDown
	// subtracts before the shared divide by P.
	corr0, corr1 *ring.Poly

	// Σ plain ciphertext parts: rotated c0 halves and AddLazy operands,
	// mod Q, coefficient domain.
	c0, c1 *ring.Poly

	// elements counts AccumulateQP calls; adds counts AddLazy calls.
	elements, adds int
}

// NewQPAccumulator returns an empty accumulator drawing its six
// polynomials from the ring scratch pools. Release or FinalizeModDown
// it when done.
func (ev *Evaluator) NewQPAccumulator() *QPAccumulator {
	ctx := ev.ctx
	acc0 := ctx.RingQP.GetPoly()
	acc1 := ctx.RingQP.GetPoly()
	acc0.DeclareNTT()
	acc1.DeclareNTT()
	return &QPAccumulator{
		ctx:   ctx,
		acc0:  acc0,
		acc1:  acc1,
		corr0: ctx.RingQ.GetPoly(),
		corr1: ctx.RingQ.GetPoly(),
		c0:    ctx.RingQ.GetPoly(),
		c1:    ctx.RingQ.GetPoly(),
	}
}

// Release returns the accumulator's buffers to the scratch pools
// without finalizing. The accumulator must not be used afterwards.
func (qa *QPAccumulator) Release() {
	qa.ctx.RingQP.PutPoly(qa.acc0)
	qa.ctx.RingQP.PutPoly(qa.acc1)
	qa.ctx.RingQ.PutPoly(qa.corr0)
	qa.ctx.RingQ.PutPoly(qa.corr1)
	qa.ctx.RingQ.PutPoly(qa.c0)
	qa.ctx.RingQ.PutPoly(qa.c1)
	qa.acc0, qa.acc1, qa.corr0, qa.corr1, qa.c0, qa.c1 = nil, nil, nil, nil, nil, nil
}

// AddLazy folds a full-modulus degree-1 ciphertext into the
// accumulator without any key switch (the i = 0 giant step, or any
// already-aligned term).
func (ev *Evaluator) AddLazy(qa *QPAccumulator, ct *Ciphertext) error {
	if debugEnabled {
		ev.ctx.debugCheckCt("AddLazy", ct)
	}
	if len(ct.Value) != 2 || ct.Drop != 0 {
		return fmt.Errorf("bfv: AddLazy requires a degree-1 full-modulus ciphertext")
	}
	rQ := ev.ctx.RingQ
	rQ.Add(qa.c0, ct.Value[0], qa.c0)
	rQ.Add(qa.c1, ct.Value[1], qa.c1)
	qa.adds++
	return nil
}

// AccumulateQP applies one lazy rotation of the decomposed ciphertext:
// the switching-key inner product lands in the accumulator's QP rows
// via the fused NTT-domain gather, the element's rounding correction is
// drained from the special-prime row (one single-row INTT), and the
// rotated c0 half joins the plain sum. No full INTT, no mod-down — the
// whole accumulated sum pays those once, in FinalizeModDown.
func (ev *Evaluator) AccumulateQP(qa *QPAccumulator, dc *DecomposedCiphertext, steps int) error {
	if steps == 0 {
		return ev.AddLazy(qa, dc.ct)
	}
	g := ev.ctx.RingQ.GaloisElementForRotation(steps)
	gk, ok := ev.galois[g]
	if !ok {
		return fmt.Errorf("bfv: missing Galois key for element %d", g)
	}
	rQP := ev.ctx.RingQP
	rQ := ev.ctx.RingQ

	bShoup, aShoup := gk.Key.shoup(rQP)
	for i, d := range dc.digits {
		rQP.AutomorphismNTTMulShoupAdd2(d, g, gk.Key.B[i], bShoup[i], qa.acc0, gk.Key.A[i], aShoup[i], qa.acc1)
	}
	ev.drainSpecialRow(qa.acc0, qa.corr0)
	ev.drainSpecialRow(qa.acc1, qa.corr1)

	c0 := rQ.GetPoly()
	rQ.Automorphism(dc.ct.Value[0], g, c0)
	rQ.Add(qa.c0, c0, qa.c0)
	rQ.PutPoly(c0)
	qa.elements++
	return nil
}

// drainSpecialRow converts the special-prime row of x (holding exactly
// one element's inner-product contribution) to the coefficient domain,
// folds its centered remainder mod each data prime into corr, and
// zeroes the row so the next element starts clean. This is the step
// that keeps lazy accumulation exact: modDownByP's rounding is
// nonlinear across elements, but its correction term is just the
// centered P-row remainder, and those sum linearly.
func (ev *Evaluator) drainSpecialRow(x, corr *ring.Poly) {
	ctx := ev.ctx
	rQ := ctx.RingQ
	rQP := ctx.RingQP
	nData := len(rQ.Moduli)
	p := rQP.Moduli[nData].Value
	halfP := p >> 1

	xp := x.Coeffs[nData]
	rQP.NTTInverseRow(nData, xp)
	for i, m := range rQ.Moduli {
		pModQ := m.Reduce(p)
		dst := corr.Coeffs[i]
		xr := xp[:len(dst)]
		for k := range dst {
			t := xr[k]
			c := m.Reduce(t)
			if t > halfP {
				c = m.Sub(c, pModQ)
			}
			dst[k] = m.Add(dst[k], c)
		}
	}
	for k := range xp {
		xp[k] = 0
	}
}

// Merge folds other into qa (qa += other) and releases other. Partial
// accumulators built by different workers over disjoint element subsets
// merge to the same bytes as a single serial accumulator: every field
// is a plain modular sum.
func (qa *QPAccumulator) Merge(other *QPAccumulator) {
	if debugEnabled {
		qa.debugCheckLazyInvariants("Merge")
		other.debugCheckLazyInvariants("Merge")
	}
	rQP := qa.ctx.RingQP
	rQ := qa.ctx.RingQ
	rQP.Add(qa.acc0, other.acc0, qa.acc0)
	rQP.Add(qa.acc1, other.acc1, qa.acc1)
	rQ.Add(qa.corr0, other.corr0, qa.corr0)
	rQ.Add(qa.corr1, other.corr1, qa.corr1)
	rQ.Add(qa.c0, other.c0, qa.c0)
	rQ.Add(qa.c1, other.c1, qa.c1)
	qa.elements += other.elements
	qa.adds += other.adds
	other.Release()
}

// FinalizeModDown closes the accumulator: one inverse NTT over the
// accumulated data rows, one subtract-corrections-and-divide-by-P
// sweep, and the plain sums folded in. The result is byte-identical to
// rotating every element individually and Add-folding the outputs.
// Consumes the accumulator.
func (ev *Evaluator) FinalizeModDown(qa *QPAccumulator) *Ciphertext {
	if debugEnabled {
		qa.debugCheckLazyInvariants("FinalizeModDown")
	}
	ctx := ev.ctx
	rQ := ctx.RingQ
	rQP := ctx.RingQP

	out := &Ciphertext{Value: make([]*ring.Poly, 2)}
	for vi, half := range [][3]*ring.Poly{
		{qa.acc0, qa.corr0, qa.c0},
		{qa.acc1, qa.corr1, qa.c1},
	} {
		acc, corr, plain := half[0], half[1], half[2]
		dst := rQ.GetPoly()
		for i, m := range rQ.Moduli {
			pi := ctx.pInvQ[i]
			pis := m.ShoupPrecomp(pi)
			src := acc.Coeffs[i]
			rQP.NTTInverseRow(i, src)
			d := dst.Coeffs[i]
			cr := corr.Coeffs[i][:len(d)]
			pl := plain.Coeffs[i][:len(d)]
			for k := range d {
				d[k] = m.Add(pl[k], m.MulShoup(m.Sub(src[k], cr[k]), pi, pis))
			}
		}
		out.Value[vi] = dst
	}
	qa.Release()
	return out
}

// debugCheckLazyInvariants asserts, under the chocodebug build tag,
// that the accumulator holds canonical residues and that the
// special-prime rows are fully drained (the lazy-accumulation
// invariant between AccumulateQP calls).
func (qa *QPAccumulator) debugCheckLazyInvariants(op string) {
	ctx := qa.ctx
	nData := len(ctx.RingQ.Moduli)
	for pi, p := range []*ring.Poly{qa.acc0, qa.acc1} {
		for i, m := range ctx.RingQP.Moduli {
			for k, v := range p.Coeffs[i] {
				if v >= m.Value {
					panic(fmt.Sprintf("bfv: chocodebug: %s accumulator %d residue [%d][%d] = %d out of range mod %d",
						op, pi, i, k, v, m.Value))
				}
				if i == nData && v != 0 {
					panic(fmt.Sprintf("bfv: chocodebug: %s accumulator %d special-prime row not drained at [%d]", op, pi, k))
				}
			}
		}
	}
	for pi, p := range []*ring.Poly{qa.corr0, qa.corr1, qa.c0, qa.c1} {
		for i, m := range ctx.RingQ.Moduli {
			for k, v := range p.Coeffs[i] {
				if v >= m.Value {
					panic(fmt.Sprintf("bfv: chocodebug: %s correction %d residue [%d][%d] = %d out of range mod %d",
						op, pi, i, k, v, m.Value))
				}
			}
		}
	}
}
