package bfv

import "testing"

func TestSeededEncryptionDecrypts(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	symEnc := NewSymmetricEncryptor(kit.ctx, kit.sk, [32]byte{71})
	vals := make([]uint64, kit.ctx.Params.N())
	for i := range vals {
		vals[i] = uint64(i*3) % kit.ctx.T.Value
	}
	sct, err := symEnc.EncryptUintsSeeded(vals)
	if err != nil {
		t.Fatal(err)
	}
	ct := sct.Expand(kit.ctx)
	got := kit.dec.DecryptUints(ct)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], vals[i])
		}
	}
	if b := NoiseBudget(kit.ctx, kit.sk, ct); b < 10 {
		t.Errorf("fresh symmetric budget %d too small", b)
	}
}

func TestSeededCiphertextSupportsServerOps(t *testing.T) {
	// The whole point: the server expands and computes as usual.
	kit := newTestKit(t, PresetTest(), 1)
	symEnc := NewSymmetricEncryptor(kit.ctx, kit.sk, [32]byte{72})
	tmod := kit.ctx.T.Value
	a := []uint64{3, 5, 7, 9}
	sct, _ := symEnc.EncryptUintsSeeded(a)
	ct := sct.Expand(kit.ctx)

	pt, _ := kit.ecd.EncodeUints([]uint64{2, 2, 2, 2})
	prod := kit.ev.MulPlain(ct, kit.ev.PrepareMul(pt))
	rot, err := kit.ev.RotateRows(prod, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.dec.DecryptUints(rot)
	want := []uint64{10 % tmod, 14 % tmod, 18 % tmod}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestSeededHalvesUpload(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	symEnc := NewSymmetricEncryptor(kit.ctx, kit.sk, [32]byte{73})
	sct, _ := symEnc.EncryptUintsSeeded([]uint64{1})
	full := kit.ctx.Params.CiphertextBytes()
	seeded := sct.WireBytes(kit.ctx)
	if seeded >= full/2+64 {
		t.Errorf("seeded %d bytes, full %d: expected ~half", seeded, full)
	}
}

func TestSeededCiphertextsAreFresh(t *testing.T) {
	// Distinct encryptions of the same message use distinct seeds and
	// produce distinct ciphertexts.
	kit := newTestKit(t, PresetTest())
	symEnc := NewSymmetricEncryptor(kit.ctx, kit.sk, [32]byte{74})
	a, _ := symEnc.EncryptUintsSeeded([]uint64{1, 2, 3})
	b, _ := symEnc.EncryptUintsSeeded([]uint64{1, 2, 3})
	if a.Seed == b.Seed {
		t.Fatal("seed reuse across encryptions")
	}
	if kit.ctx.RingQ.Equal(a.C0, b.C0) {
		t.Fatal("identical c0 across fresh encryptions")
	}
	// Expansion is deterministic: expanding twice gives identical cts.
	x := a.Expand(kit.ctx)
	y := a.Expand(kit.ctx)
	if !kit.ctx.RingQ.Equal(x.Value[1], y.Value[1]) {
		t.Fatal("expansion nondeterministic")
	}
}

func TestSeededDeterministicStream(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	e1 := NewSymmetricEncryptor(kit.ctx, kit.sk, [32]byte{75})
	e2 := NewSymmetricEncryptor(kit.ctx, kit.sk, [32]byte{75})
	a, _ := e1.EncryptUintsSeeded([]uint64{9})
	b, _ := e2.EncryptUintsSeeded([]uint64{9})
	if a.Seed != b.Seed || !kit.ctx.RingQ.Equal(a.C0, b.C0) {
		t.Error("same encryptor seed should reproduce the ciphertext")
	}
}
