package bfv

import (
	"strings"
	"testing"

	"choco/internal/ring"
)

func ctsIdentical(r *ring.Ring, a, b *Ciphertext) bool {
	if len(a.Value) != len(b.Value) || a.Drop != b.Drop {
		return false
	}
	for i := range a.Value {
		if !r.Equal(a.Value[i], b.Value[i]) {
			return false
		}
	}
	return true
}

// TestHoistedMatchesSerialAllPresets pins the tentpole guarantee on the
// paper's parameter presets: for every Galois element the evaluator
// holds a key for (all rotation steps plus the row swap), the hoisted
// batch produces ciphertexts byte-identical to the serial
// RotateRows/applyGalois path, with matching noise budgets.
func TestHoistedMatchesSerialAllPresets(t *testing.T) {
	steps := []int{1, 2, 3, 5, -1, -4}
	for _, tc := range []struct {
		name   string
		params Parameters
	}{
		{"PresetTest", PresetTest()},
		{"PresetA", PresetA()},
		{"PresetB", PresetB()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			kit := newTestKit(t, tc.params, steps...)
			rQ := kit.ctx.RingQ
			ct, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), kit.ctx.T.Value))
			if err != nil {
				t.Fatal(err)
			}

			// Batch API vs one serial rotation per step.
			hoisted, err := kit.ev.RotateRowsHoisted(ct, steps)
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range steps {
				serial, err := kit.ev.RotateRows(ct, s)
				if err != nil {
					t.Fatal(err)
				}
				if !ctsIdentical(rQ, serial, hoisted[i]) {
					t.Errorf("steps=%d: hoisted ciphertext differs from serial", s)
				}
				if sb, hb := NoiseBudget(kit.ctx, kit.sk, serial), NoiseBudget(kit.ctx, kit.sk, hoisted[i]); sb != hb {
					t.Errorf("steps=%d: noise budget %d (serial) vs %d (hoisted)", s, sb, hb)
				}
			}

			// Every Galois element in the key registry, including the
			// row swap, through the decomposed API directly.
			dc, err := kit.ev.Decompose(ct)
			if err != nil {
				t.Fatal(err)
			}
			defer dc.Release()
			for g := range kit.ev.galois {
				viaHoist, err := kit.ev.applyGaloisDecomposed(dc, g)
				if err != nil {
					t.Fatal(err)
				}
				viaSerial, err := kit.ev.applyGalois(ct, g)
				if err != nil {
					t.Fatal(err)
				}
				if !ctsIdentical(rQ, viaSerial, viaHoist) {
					t.Errorf("galois=%d: decomposed result differs from applyGalois", g)
				}
			}
		})
	}
}

// TestHoistedRowSwapMatchesRotateColumns covers the dedicated row-swap
// entry point.
func TestHoistedRowSwapMatchesRotateColumns(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	ct, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), kit.ctx.T.Value))
	if err != nil {
		t.Fatal(err)
	}
	dc, err := kit.ev.Decompose(ct)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Release()
	a, err := kit.ev.RotateColumnsDecomposed(dc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kit.ev.RotateColumns(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !ctsIdentical(kit.ctx.RingQ, a, b) {
		t.Error("hoisted row swap differs from RotateColumns")
	}
}

// TestHoistedZeroStepIsCopy pins the steps==0 shortcut of the
// decomposed path against the serial one.
func TestHoistedZeroStepIsCopy(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	ct, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), kit.ctx.T.Value))
	if err != nil {
		t.Fatal(err)
	}
	outs, err := kit.ev.RotateRowsHoisted(ct, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !ctsIdentical(kit.ctx.RingQ, ct, outs[0]) {
		t.Error("zero-step hoisted rotation is not a copy")
	}
}

// TestHoistedMissingGaloisKey exercises the error path: a batch that
// includes a step without a generated key must fail with the same
// missing-key error as the serial path, at batch and per-element level.
func TestHoistedMissingGaloisKey(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	ct, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), kit.ctx.T.Value))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kit.ev.RotateRowsHoisted(ct, []int{1, 3}); err == nil {
		t.Fatal("expected missing-key error from hoisted batch")
	} else if !strings.Contains(err.Error(), "missing Galois key") {
		t.Fatalf("unexpected error: %v", err)
	}
	dc, err := kit.ev.Decompose(ct)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Release()
	if _, err := kit.ev.RotateRowsDecomposed(dc, 3); err == nil {
		t.Fatal("expected missing-key error from decomposed rotation")
	} else if !strings.Contains(err.Error(), "missing Galois key") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDecomposeRejectsBadInputs pins the degree/level guards.
func TestDecomposeRejectsBadInputs(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	ct, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), kit.ctx.T.Value))
	if err != nil {
		t.Fatal(err)
	}
	deg2, err := kit.ev.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kit.ev.Decompose(deg2); err == nil {
		t.Error("expected error for degree-2 ciphertext")
	}
	dropped, err := kit.ev.ModSwitchDown(ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kit.ev.Decompose(dropped); err == nil {
		t.Error("expected error for modulus-switched ciphertext")
	}
}

// TestHoistedMatchesUnhoistedKeySwitchPath is the mathematical anchor:
// the pre-hoisting rotation (automorphism of c1 in the coefficient
// domain, then a fresh keySwitch decomposition) and the hoisted one
// (decompose first, permute digits in the NTT domain) are different
// decompositions of the same polynomial, so their ciphertext bytes may
// differ — but both must decrypt to the same rotated plaintext with a
// healthy noise budget.
func TestHoistedMatchesUnhoistedKeySwitchPath(t *testing.T) {
	const steps = 3
	kit := newTestKit(t, PresetTest(), steps)
	vals := rampUints(kit.ctx.Params.N(), kit.ctx.T.Value)
	ct, err := kit.enc.EncryptUints(vals)
	if err != nil {
		t.Fatal(err)
	}
	r := kit.ctx.RingQ
	g := r.GaloisElementForRotation(steps)
	gk := kit.ev.galois[g]

	// The pre-hoisting path, reconstructed verbatim.
	c0 := r.GetPoly()
	c1 := r.GetPoly()
	r.Automorphism(ct.Value[0], g, c0)
	r.Automorphism(ct.Value[1], g, c1)
	d0, d1 := kit.ev.keySwitch(c1, gk.Key)
	old := &Ciphertext{Value: []*ring.Poly{r.NewPoly(), d1}}
	r.Add(c0, d0, old.Value[0])
	r.PutPoly(c0)
	r.PutPoly(c1)
	r.PutPoly(d0)

	rotated, err := kit.ev.RotateRows(ct, steps)
	if err != nil {
		t.Fatal(err)
	}

	oldDec := kit.ecd.DecodeUints(kit.dec.Decrypt(old))
	newDec := kit.ecd.DecodeUints(kit.dec.Decrypt(rotated))
	for i := range oldDec {
		if oldDec[i] != newDec[i] {
			t.Fatalf("slot %d: unhoisted path decodes %d, hoisted path %d", i, oldDec[i], newDec[i])
		}
	}
	if b := NoiseBudget(kit.ctx, kit.sk, rotated); b <= 0 {
		t.Fatalf("hoisted rotation exhausted the noise budget (%d bits)", b)
	}
	if ob, nb := NoiseBudget(kit.ctx, kit.sk, old), NoiseBudget(kit.ctx, kit.sk, rotated); nb < ob-1 {
		t.Fatalf("hoisted rotation noticeably noisier: %d vs %d bits", nb, ob)
	}
}

// TestEmbedDigitCopyMatchesReduce pins the embedding micro-optimization:
// when the source residue's modulus q_i does not exceed a target row's
// modulus, copying the already-reduced values verbatim must equal the
// old unconditional per-coefficient Reduce.
func TestEmbedDigitCopyMatchesReduce(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	rQP := kit.ctx.RingQP
	rQ := kit.ctx.RingQ
	ct, err := kit.enc.EncryptUints(rampUints(kit.ctx.Params.N(), kit.ctx.T.Value))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rQ.Moduli {
		src := ct.Value[1].Coeffs[i]
		got := rQP.GetPoly()
		kit.ev.embedDigit(src, i, got)
		want := rQP.GetPoly()
		for j, m := range rQP.Moduli {
			dst := want.Coeffs[j]
			for k := range dst {
				dst[k] = m.Reduce(src[k])
			}
		}
		if !rQP.Equal(got, want) {
			t.Fatalf("digit %d: copy-optimized embedding differs from Reduce reference", i)
		}
		rQP.PutPoly(got)
		rQP.PutPoly(want)
	}
}

// TestHoistedBatchAcrossSessions pins the cross-request entry point:
// fusing the hoisted schedules of ciphertexts from different sessions
// (distinct secret keys, one shared preset) must produce exactly the
// per-session RotateRowsHoisted outputs — byte-identical, per set, in
// step order.
func TestHoistedBatchAcrossSessions(t *testing.T) {
	params := PresetTest()
	ctx, err := NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	steps := [][]int{{1, 2, 5}, {2, 3}, {0, 1}}
	allSteps := []int{1, 2, 3, 5}
	sets := make([]HoistedRotationSet, len(steps))
	evs := make([]*Evaluator, len(steps))
	for i := range steps {
		kg := NewKeyGenerator(ctx, [32]byte{byte(10 + i)})
		sk := kg.GenSecretKey()
		enc := NewEncryptor(ctx, kg.GenPublicKey(sk), [32]byte{byte(20 + i)})
		ev := NewEvaluator(ctx, nil, kg.GenRotationKeys(sk, allSteps...))
		vals := make([]uint64, ctx.Params.N())
		for j := range vals {
			vals[j] = uint64(i*31+j) % ctx.T.Value
		}
		ct, err := enc.EncryptUints(vals)
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = HoistedRotationSet{Ev: ev, Ct: ct, Steps: steps[i]}
		evs[i] = ev
	}

	batched, err := RotateRowsHoistedBatch(sets)
	if err != nil {
		t.Fatal(err)
	}
	for i, set := range sets {
		serial, err := evs[i].RotateRowsHoisted(set.Ct, set.Steps)
		if err != nil {
			t.Fatal(err)
		}
		if len(batched[i]) != len(serial) {
			t.Fatalf("set %d: %d outputs, want %d", i, len(batched[i]), len(serial))
		}
		for j := range serial {
			if !ctsIdentical(ctx.RingQ, serial[j], batched[i][j]) {
				t.Errorf("set %d step %d: batched ciphertext differs from per-session hoisted", i, set.Steps[j])
			}
		}
	}

	// A missing key anywhere in the batch fails the whole call, like the
	// per-session path would.
	bad := sets
	bad[1].Steps = []int{7}
	if _, err := RotateRowsHoistedBatch(bad); err == nil {
		t.Fatal("expected missing-key error from fused batch")
	} else if !strings.Contains(err.Error(), "missing Galois key") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Empty batches and empty step lists are harmless no-ops.
	if outs, err := RotateRowsHoistedBatch(nil); err != nil || len(outs) != 0 {
		t.Fatalf("empty batch: (%v, %v)", outs, err)
	}
}
