package bfv

import (
	"choco/internal/ring"
	"choco/internal/sampling"
)

// Seeded symmetric encryption: when the encryptor holds the secret key
// (always true for CHOCO's client), the second ciphertext component can
// be a pseudorandom polynomial expanded from a 32-byte seed instead of
// being transmitted:
//
//	a  ← PRG(seed),  c0 = [-(a·s + e) + Δm]_q,  send (c0, seed)
//
// The server expands a from the seed, reconstructing (c0, a). This
// halves the client's upload — on top of everything CHOCO already does
// — at zero security cost (a is uniform either way). An extension
// beyond the paper; SEAL and Lattigo ship the same optimization.

// SeededCiphertext is the compressed wire form of a fresh symmetric
// encryption.
type SeededCiphertext struct {
	C0   *ring.Poly
	Seed [32]byte
}

// SymmetricEncryptor encrypts under the secret key, producing seeded
// ciphertexts.
type SymmetricEncryptor struct {
	ctx     *Context
	sk      *SecretKey
	encoder *Encoder
	src     *sampling.Source
	// OpCount tallies encryptions performed.
	OpCount int
	counter uint64
}

// NewSymmetricEncryptor returns a secret-key encryptor seeded by seed.
func NewSymmetricEncryptor(ctx *Context, sk *SecretKey, seed [32]byte) *SymmetricEncryptor {
	return &SymmetricEncryptor{
		ctx:     ctx,
		sk:      sk,
		encoder: NewEncoder(ctx),
		src:     sampling.NewSource(seed, "bfv-symmetric-encryptor"),
	}
}

// expandA deterministically regenerates the uniform polynomial from a
// seed (NTT domain, one row per data prime).
func expandA(ctx *Context, seed [32]byte) *ring.Poly {
	r := ctx.RingQ
	src := sampling.NewSource(seed, "bfv-seeded-a")
	a := r.NewPoly()
	for i, m := range r.Moduli {
		src.UniformMod(a.Coeffs[i], m.Value)
	}
	a.DeclareNTT()
	return a
}

// EncryptSeeded encrypts a plaintext into the compressed form.
func (enc *SymmetricEncryptor) EncryptSeeded(pt *Plaintext) *SeededCiphertext {
	ctx := enc.ctx
	r := ctx.RingQ
	enc.OpCount++

	// Derive a fresh per-ciphertext seed from the encryptor's stream.
	var ctSeed [32]byte
	for i := 0; i < 4; i++ {
		v := enc.src.Uint64()
		for j := 0; j < 8; j++ {
			ctSeed[8*i+j] = byte(v >> (8 * j))
		}
	}
	enc.counter++

	a := expandA(ctx, ctSeed)

	// c0 = -(a·s + e) + Δm, transmitted in the coefficient domain.
	c0 := r.NewPoly()
	r.MulCoeffs(a, enc.sk.ValueQ, c0)
	r.INTT(c0)
	eSigned := make([]int64, ctx.Params.N())
	enc.src.GaussianSigned(eSigned, ctx.Params.Sigma)
	e := r.NewPoly()
	r.SetCoeffsInt64(eSigned, e)
	r.Add(c0, e, c0)
	r.Neg(c0, c0)
	dm := enc.encoder.liftToQScaled(pt)
	r.Add(c0, dm, c0)

	return &SeededCiphertext{C0: c0, Seed: ctSeed}
}

// EncryptUintsSeeded encodes and encrypts in one step.
func (enc *SymmetricEncryptor) EncryptUintsSeeded(values []uint64) (*SeededCiphertext, error) {
	pt, err := enc.encoder.EncodeUints(values)
	if err != nil {
		return nil, err
	}
	return enc.EncryptSeeded(pt), nil
}

// EncryptIntsSeeded encodes and encrypts signed values.
func (enc *SymmetricEncryptor) EncryptIntsSeeded(values []int64) (*SeededCiphertext, error) {
	pt, err := enc.encoder.EncodeInts(values)
	if err != nil {
		return nil, err
	}
	return enc.EncryptSeeded(pt), nil
}

// Expand reconstructs the full two-component ciphertext (server side).
func (sct *SeededCiphertext) Expand(ctx *Context) *Ciphertext {
	a := expandA(ctx, sct.Seed)
	ctx.RingQ.INTT(a) // ciphertexts live in the coefficient domain
	return &Ciphertext{Value: []*ring.Poly{ctx.RingQ.CopyPoly(sct.C0), a}}
}

// WireBytes returns the serialized payload size: one polynomial plus
// the seed — about half a regular ciphertext.
func (sct *SeededCiphertext) WireBytes(ctx *Context) int {
	return ctx.Params.N()*len(ctx.RingQ.Moduli)*8 + 32
}
