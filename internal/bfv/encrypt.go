package bfv

import (
	"math/big"

	"choco/internal/nt"
	"choco/internal/par"
	"choco/internal/ring"
	"choco/internal/sampling"
)

// Ciphertext is a BFV ciphertext of degree len(Value)-1 over the data
// ring, stored in the coefficient domain. Drop counts the data
// residues removed by modulus switching (0 for fresh ciphertexts —
// the zero value is a full-modulus ciphertext); a dropped ciphertext
// is smaller on the wire but supports only decryption, which is
// exactly how the server uses it: compute at full modulus, switch
// down, transmit.
type Ciphertext struct {
	Value []*ring.Poly
	Drop  int
}

// Degree returns the ciphertext degree (1 for fresh ciphertexts).
func (ct *Ciphertext) Degree() int { return len(ct.Value) - 1 }

// CopyCt returns a deep copy.
func (ctx *Context) CopyCt(ct *Ciphertext) *Ciphertext {
	r := ctx.RingAtDrop(ct.Drop)
	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value)), Drop: ct.Drop}
	for i, p := range ct.Value {
		out.Value[i] = r.CopyPoly(p)
	}
	return out
}

// Encryptor performs asymmetric BFV encryption — the client-side kernel
// of Eq. 2 in the paper: ct = ([Δm + P0·u + e1]_q, [P1·u + e2]_q).
// It is not safe for concurrent use: the sampling stream and the
// per-encryptor scratch buffers are stateful.
type Encryptor struct {
	ctx     *Context
	pk      *PublicKey
	encoder *Encoder
	src     *sampling.Source
	// Per-encryptor sampling buffers, reused across calls so the
	// steady-state encryption loop does not allocate.
	uSigned  []int64
	e1Signed []int64
	e2Signed []int64
	// OpCount tallies encryptions performed, used by the system-level
	// client cost accounting.
	OpCount int
}

// NewEncryptor returns an encryptor drawing randomness from seed.
func NewEncryptor(ctx *Context, pk *PublicKey, seed [32]byte) *Encryptor {
	n := ctx.Params.N()
	return &Encryptor{
		ctx:      ctx,
		pk:       pk,
		encoder:  NewEncoder(ctx),
		src:      sampling.NewSource(seed, "bfv-encryptor"),
		uSigned:  make([]int64, n),
		e1Signed: make([]int64, n),
		e2Signed: make([]int64, n),
	}
}

// Encrypt encrypts an encoded plaintext.
func (enc *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	r := enc.ctx.RingQ
	ct := &Ciphertext{Value: []*ring.Poly{r.NewPoly(), r.NewPoly()}}
	enc.EncryptInto(pt, ct)
	return ct
}

// reduceSigned maps a signed coefficient into [0, q), matching
// ring.SetCoeffsInt64 bit for bit.
func reduceSigned(m nt.Modulus, v int64) uint64 {
	if v >= 0 {
		return m.Reduce(uint64(v))
	}
	return m.Neg(m.Reduce(uint64(-v)))
}

// EncryptInto encrypts pt into ct, reusing ct's polynomials — the
// zero-allocation path for steady-state client loops. ct must be a
// degree-1 full-modulus ciphertext (as produced by Encrypt); its
// previous contents are overwritten.
//
// The work is organized as a fused per-RNS-residue pipeline, the
// software shape of CHOCO-TACO's per-residue replication: randomness
// is drawn once up front (preserving the sampling stream order of the
// serial implementation), then each residue row independently runs
// reduce → NTT → dyadic mul → inverse NTT → error/message add for
// both ciphertext halves. Rows fan out across internal/par; because
// rows never share state, the result is byte-identical to serial
// execution regardless of worker count.
func (enc *Encryptor) EncryptInto(pt *Plaintext, ct *Ciphertext) {
	ctx := enc.ctx
	r := ctx.RingQ
	enc.OpCount++

	// u ← ternary, e1, e2 ← χ, in the serial draw order.
	enc.src.TernarySigned(enc.uSigned)
	enc.src.GaussianSigned(enc.e1Signed, ctx.Params.Sigma)
	enc.src.GaussianSigned(enc.e2Signed, ctx.Params.Sigma)

	u := r.GetPoly()
	c0, c1 := ct.Value[0], ct.Value[1]
	ptRow := pt.Poly.Coeffs[0]
	par.ForWorker(r.Level(), func(_, i int) {
		m := r.Moduli[i]
		ur := u.Coeffs[i]
		for j, v := range enc.uSigned {
			ur[j] = reduceSigned(m, v)
		}
		r.NTTForwardRow(i, ur)

		// c0 row = INTT(P0 ⊙ u) + e1 + Δm
		p0r, c0r := enc.pk.P0.Coeffs[i], c0.Coeffs[i]
		for j := range c0r {
			c0r[j] = m.Mul(p0r[j], ur[j])
		}
		r.NTTInverseRow(i, c0r)
		d, ds := ctx.deltaRNS[i], ctx.deltaRNSShoup[i]
		for j := range c0r {
			v := m.Add(c0r[j], reduceSigned(m, enc.e1Signed[j]))
			c0r[j] = m.Add(v, m.MulShoup(m.Reduce(ptRow[j]), d, ds))
		}

		// c1 row = INTT(P1 ⊙ u) + e2
		p1r, c1r := enc.pk.P1.Coeffs[i], c1.Coeffs[i]
		for j := range c1r {
			c1r[j] = m.Mul(p1r[j], ur[j])
		}
		r.NTTInverseRow(i, c1r)
		for j := range c1r {
			c1r[j] = m.Add(c1r[j], reduceSigned(m, enc.e2Signed[j]))
		}
	})
	r.PutPoly(u)
	c0.DeclareCoeff()
	c1.DeclareCoeff()
	ct.Drop = 0
}

// EncryptUints encodes and encrypts in one step.
func (enc *Encryptor) EncryptUints(values []uint64) (*Ciphertext, error) {
	pt, err := enc.encoder.EncodeUints(values)
	if err != nil {
		return nil, err
	}
	return enc.Encrypt(pt), nil
}

// EncryptInts encodes and encrypts signed values.
func (enc *Encryptor) EncryptInts(values []int64) (*Ciphertext, error) {
	pt, err := enc.encoder.EncodeInts(values)
	if err != nil {
		return nil, err
	}
	return enc.Encrypt(pt), nil
}

// EncryptZero returns a fresh encryption of zero (used by the server to
// randomize responses and by tests).
func (enc *Encryptor) EncryptZero() *Ciphertext {
	pt := &Plaintext{Poly: enc.ctx.RingT.NewPoly()}
	return enc.Encrypt(pt)
}

// Decryptor inverts encryption given the secret key — Eq. 3:
// m = [round(t/q · [c0 + c1·s]_q)]_t.
type Decryptor struct {
	ctx     *Context
	sk      *SecretKey
	encoder *Encoder
	// skAtDrop[d] is a level-truncated NTT-domain view of the secret
	// key for drop level d, cached so phase computation allocates
	// nothing.
	skAtDrop []ring.Poly
	// OpCount tallies decryptions performed.
	OpCount int
}

// NewDecryptor returns a decryptor for sk.
func NewDecryptor(ctx *Context, sk *SecretKey) *Decryptor {
	nData := len(ctx.RingQ.Moduli)
	skAtDrop := make([]ring.Poly, nData)
	for d := range skAtDrop {
		skAtDrop[d] = ring.Poly{Coeffs: sk.ValueQ.Coeffs[:nData-d], IsNTT: true}
	}
	return &Decryptor{ctx: ctx, sk: sk, encoder: NewEncoder(ctx), skAtDrop: skAtDrop}
}

// phaseInto computes [c0 + c1·s + c2·s² + ...]_q into acc
// (coefficient domain), at the ciphertext's (possibly
// modulus-switched) level. Temporaries come from the ring scratch pool
// and are returned before exit, so steady-state calls do not allocate.
//
// The whole phase is a fused per-residue pipeline (the decryption twin
// of EncryptInto): each row independently runs NTT(c_i) → ·s^i →
// accumulate → inverse NTT → +c0, fanned across internal/par. c0
// never pays a forward NTT (2 transforms per degree-1 decryption, not
// 3), and rows share no state, so the result is byte-identical to
// serial execution.
func (dec *Decryptor) phaseInto(ct *Ciphertext, acc *ring.Poly) {
	r := dec.ctx.RingAtDrop(ct.Drop)
	if len(ct.Value) == 1 { // degree 0: phase is c0 itself
		r.Copy(acc, ct.Value[0])
		return
	}
	sk := &dec.skAtDrop[ct.Drop]
	ci := r.GetPoly()
	var sPow *ring.Poly // s^i rows, needed only for degree ≥ 2
	if len(ct.Value) > 2 {
		sPow = r.GetPoly()
	}
	par.ForWorker(r.Level(), func(_, i int) {
		m := r.Moduli[i]
		accr, cir, skr := acc.Coeffs[i], ci.Coeffs[i], sk.Coeffs[i]
		copy(cir, ct.Value[1].Coeffs[i])
		r.NTTForwardRow(i, cir)
		for j := range accr {
			accr[j] = m.Mul(cir[j], skr[j])
		}
		if sPow != nil {
			spr := sPow.Coeffs[i]
			copy(spr, skr)
			for k := 2; k < len(ct.Value); k++ {
				for j := range spr {
					spr[j] = m.Mul(spr[j], skr[j]) // s^k
				}
				copy(cir, ct.Value[k].Coeffs[i])
				r.NTTForwardRow(i, cir)
				for j := range accr {
					accr[j] = m.Add(accr[j], m.Mul(cir[j], spr[j]))
				}
			}
		}
		r.NTTInverseRow(i, accr)
		c0r := ct.Value[0].Coeffs[i]
		for j := range accr {
			accr[j] = m.Add(accr[j], c0r[j])
		}
	})
	r.PutPoly(ci)
	r.PutPoly(sPow)
	acc.DeclareCoeff()
}

// phase is the allocating form of phaseInto, for callers that keep the
// result (NoiseBudget).
func (dec *Decryptor) phase(ct *Ciphertext) *ring.Poly {
	acc := dec.ctx.RingAtDrop(ct.Drop).NewPoly()
	dec.phaseInto(ct, acc)
	return acc
}

// Decrypt returns the plaintext underlying ct, scaling by the
// ciphertext's own modulus (which modulus switching may have shrunk).
// The scaling runs RNS-natively (decrypt_rns.go): a flat uint64 pass
// with no big.Int in the loop; DecryptOracle keeps the reference path.
func (dec *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	out := &Plaintext{Poly: dec.ctx.RingT.NewPoly()}
	dec.DecryptInto(ct, out)
	return out
}

// DecryptInto decrypts ct into pt, reusing pt's backing storage — the
// zero-allocation path for steady-state client loops (serve/nn call it
// once per linear phase boundary).
func (dec *Decryptor) DecryptInto(ct *Ciphertext, pt *Plaintext) {
	ctx := dec.ctx
	dec.OpCount++
	r := ctx.RingAtDrop(ct.Drop)
	x := r.GetPoly()
	dec.phaseInto(ct, x)
	ctx.scaleCenteredInto(x, ct.Drop, pt.Poly.Coeffs[0])
	r.PutPoly(x)
	pt.Poly.DeclareCoeff()
}

// DecryptOracle is the big.Int reference decryption — centered CRT
// composition and rational rounding per coefficient, exactly the
// pre-RNS implementation. Property tests pin Decrypt == DecryptOracle;
// it is not a hot path.
func (dec *Decryptor) DecryptOracle(ct *Ciphertext) *Plaintext {
	ctx := dec.ctx
	dec.OpCount++
	r := ctx.RingAtDrop(ct.Drop)
	x := r.GetPoly()
	dec.phaseInto(ct, x)
	out := &Plaintext{Poly: ctx.RingT.NewPoly()}
	ctx.scaleOracleInto(r, x, out.Poly.Coeffs[0])
	r.PutPoly(x)
	return out
}

// DecryptUints decrypts and decodes all slots.
func (dec *Decryptor) DecryptUints(ct *Ciphertext) []uint64 {
	return dec.encoder.DecodeUints(dec.Decrypt(ct))
}

// DecryptInts decrypts and decodes all slots as centered values.
func (dec *Decryptor) DecryptInts(ct *Ciphertext) []int64 {
	return dec.encoder.DecodeInts(dec.Decrypt(ct))
}

// roundDiv returns round(a/b) for positive b, rounding half away from
// zero, as a new big.Int.
func roundDiv(a, b *big.Int) *big.Int {
	q, r := new(big.Int).QuoRem(a, b, new(big.Int))
	r.Abs(r)
	r.Lsh(r, 1)
	if r.Cmp(b) >= 0 {
		if a.Sign() < 0 {
			q.Sub(q, big.NewInt(1))
		} else {
			q.Add(q, big.NewInt(1))
		}
	}
	return q
}
