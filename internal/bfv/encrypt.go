package bfv

import (
	"math/big"

	"choco/internal/ring"
	"choco/internal/sampling"
)

// Ciphertext is a BFV ciphertext of degree len(Value)-1 over the data
// ring, stored in the coefficient domain. Drop counts the data
// residues removed by modulus switching (0 for fresh ciphertexts —
// the zero value is a full-modulus ciphertext); a dropped ciphertext
// is smaller on the wire but supports only decryption, which is
// exactly how the server uses it: compute at full modulus, switch
// down, transmit.
type Ciphertext struct {
	Value []*ring.Poly
	Drop  int
}

// Degree returns the ciphertext degree (1 for fresh ciphertexts).
func (ct *Ciphertext) Degree() int { return len(ct.Value) - 1 }

// CopyCt returns a deep copy.
func (ctx *Context) CopyCt(ct *Ciphertext) *Ciphertext {
	r := ctx.RingAtDrop(ct.Drop)
	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value)), Drop: ct.Drop}
	for i, p := range ct.Value {
		out.Value[i] = r.CopyPoly(p)
	}
	return out
}

// Encryptor performs asymmetric BFV encryption — the client-side kernel
// of Eq. 2 in the paper: ct = ([Δm + P0·u + e1]_q, [P1·u + e2]_q).
type Encryptor struct {
	ctx     *Context
	pk      *PublicKey
	encoder *Encoder
	src     *sampling.Source
	// OpCount tallies encryptions performed, used by the system-level
	// client cost accounting.
	OpCount int
}

// NewEncryptor returns an encryptor drawing randomness from seed.
func NewEncryptor(ctx *Context, pk *PublicKey, seed [32]byte) *Encryptor {
	return &Encryptor{
		ctx:     ctx,
		pk:      pk,
		encoder: NewEncoder(ctx),
		src:     sampling.NewSource(seed, "bfv-encryptor"),
	}
}

// Encrypt encrypts an encoded plaintext.
func (enc *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	ctx := enc.ctx
	r := ctx.RingQ
	n := ctx.Params.N()
	enc.OpCount++

	// u ← ternary, e1, e2 ← χ.
	u := r.NewPoly()
	uSigned := make([]int64, n)
	enc.src.TernarySigned(uSigned)
	r.SetCoeffsInt64(uSigned, u)
	r.NTT(u)

	eSigned := make([]int64, n)

	// c0 = P0·u + e1 + Δm
	c0 := r.NewPoly()
	r.MulCoeffs(enc.pk.P0, u, c0)
	r.INTT(c0)
	e1 := r.NewPoly()
	enc.src.GaussianSigned(eSigned, ctx.Params.Sigma)
	r.SetCoeffsInt64(eSigned, e1)
	r.Add(c0, e1, c0)
	dm := enc.encoder.liftToQScaled(pt)
	r.Add(c0, dm, c0)

	// c1 = P1·u + e2
	c1 := r.NewPoly()
	r.MulCoeffs(enc.pk.P1, u, c1)
	r.INTT(c1)
	e2 := r.NewPoly()
	enc.src.GaussianSigned(eSigned, ctx.Params.Sigma)
	r.SetCoeffsInt64(eSigned, e2)
	r.Add(c1, e2, c1)

	return &Ciphertext{Value: []*ring.Poly{c0, c1}}
}

// EncryptUints encodes and encrypts in one step.
func (enc *Encryptor) EncryptUints(values []uint64) (*Ciphertext, error) {
	pt, err := enc.encoder.EncodeUints(values)
	if err != nil {
		return nil, err
	}
	return enc.Encrypt(pt), nil
}

// EncryptInts encodes and encrypts signed values.
func (enc *Encryptor) EncryptInts(values []int64) (*Ciphertext, error) {
	pt, err := enc.encoder.EncodeInts(values)
	if err != nil {
		return nil, err
	}
	return enc.Encrypt(pt), nil
}

// EncryptZero returns a fresh encryption of zero (used by the server to
// randomize responses and by tests).
func (enc *Encryptor) EncryptZero() *Ciphertext {
	pt := &Plaintext{Poly: enc.ctx.RingT.NewPoly()}
	return enc.Encrypt(pt)
}

// Decryptor inverts encryption given the secret key — Eq. 3:
// m = [round(t/q · [c0 + c1·s]_q)]_t.
type Decryptor struct {
	ctx *Context
	sk  *SecretKey
	// OpCount tallies decryptions performed.
	OpCount int
}

// NewDecryptor returns a decryptor for sk.
func NewDecryptor(ctx *Context, sk *SecretKey) *Decryptor {
	return &Decryptor{ctx: ctx, sk: sk}
}

// phase computes [c0 + c1·s + c2·s² + ...]_q in the coefficient
// domain, at the ciphertext's (possibly modulus-switched) level.
func (dec *Decryptor) phase(ct *Ciphertext) *ring.Poly {
	r := dec.ctx.RingAtDrop(ct.Drop)
	acc := r.CopyPoly(ct.Value[0])
	r.NTT(acc)
	skTrunc := &ring.Poly{Coeffs: dec.sk.ValueQ.Coeffs[:r.Level()], IsNTT: true}
	sPow := r.CopyPoly(skTrunc)
	tmp := r.NewPoly()
	for i := 1; i < len(ct.Value); i++ {
		ci := r.CopyPoly(ct.Value[i])
		r.NTT(ci)
		r.MulCoeffs(ci, sPow, tmp)
		r.Add(acc, tmp, acc)
		if i+1 < len(ct.Value) {
			r.MulCoeffs(sPow, skTrunc, sPow)
		}
	}
	r.INTT(acc)
	return acc
}

// Decrypt returns the plaintext underlying ct, scaling by the
// ciphertext's own modulus (which modulus switching may have shrunk).
func (dec *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	ctx := dec.ctx
	dec.OpCount++
	x := dec.phase(ct)
	r := ctx.RingAtDrop(ct.Drop)
	// Scale: m_j = round(t · x_j / Q) mod t on centered x_j.
	vals := make([]*big.Int, ctx.Params.N())
	r.PolyToBigintCentered(x, vals)
	bigQ := r.ModulusBig()
	bt := new(big.Int).SetUint64(ctx.T.Value)
	out := &Plaintext{Poly: ctx.RingT.NewPoly()}
	row := out.Poly.Coeffs[0]
	num := new(big.Int)
	for j, v := range vals {
		num.Mul(v, bt)
		m := roundDiv(num, bigQ)
		m.Mod(m, bt)
		row[j] = m.Uint64()
	}
	return out
}

// DecryptUints decrypts and decodes all slots.
func (dec *Decryptor) DecryptUints(ct *Ciphertext) []uint64 {
	return NewEncoder(dec.ctx).DecodeUints(dec.Decrypt(ct))
}

// DecryptInts decrypts and decodes all slots as centered values.
func (dec *Decryptor) DecryptInts(ct *Ciphertext) []int64 {
	return NewEncoder(dec.ctx).DecodeInts(dec.Decrypt(ct))
}

// roundDiv returns round(a/b) for positive b, rounding half away from
// zero, as a new big.Int.
func roundDiv(a, b *big.Int) *big.Int {
	q, r := new(big.Int).QuoRem(a, b, new(big.Int))
	r.Abs(r)
	r.Lsh(r, 1)
	if r.Cmp(b) >= 0 {
		if a.Sign() < 0 {
			q.Sub(q, big.NewInt(1))
		} else {
			q.Add(q, big.NewInt(1))
		}
	}
	return q
}
