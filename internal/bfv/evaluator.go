package bfv

import (
	"fmt"
	"math/big"

	"choco/internal/ring"
)

// Evaluator applies homomorphic operations server-side. It is stateless
// apart from the evaluation keys it was given; methods allocate their
// results.
type Evaluator struct {
	ctx     *Context
	encoder *Encoder
	relin   *RelinearizationKey
	galois  map[uint64]*GaloisKey
}

// NewEvaluator returns an evaluator. relin and galois may be nil when
// multiplication / rotation are not needed.
func NewEvaluator(ctx *Context, relin *RelinearizationKey, galois map[uint64]*GaloisKey) *Evaluator {
	return &Evaluator{ctx: ctx, encoder: NewEncoder(ctx), relin: relin, galois: galois}
}

// Add returns a + b (ciphertext addition, small noise growth). The
// operands must sit at the same modulus level.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	if debugEnabled {
		ev.ctx.debugCheckCt("Add", a, b)
	}
	if a.Drop != b.Drop {
		panic("bfv: adding ciphertexts at different modulus levels")
	}
	r := ev.ctx.RingAtDrop(a.Drop)
	deg := max(len(a.Value), len(b.Value))
	out := &Ciphertext{Value: make([]*ring.Poly, deg), Drop: a.Drop}
	for i := 0; i < deg; i++ {
		out.Value[i] = r.NewPoly()
		switch {
		case i < len(a.Value) && i < len(b.Value):
			r.Add(a.Value[i], b.Value[i], out.Value[i])
		case i < len(a.Value):
			r.Copy(out.Value[i], a.Value[i])
		default:
			r.Copy(out.Value[i], b.Value[i])
		}
	}
	return out
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	if debugEnabled {
		ev.ctx.debugCheckCt("Sub", a, b)
	}
	r := ev.ctx.RingAtDrop(b.Drop)
	neg := &Ciphertext{Value: make([]*ring.Poly, len(b.Value)), Drop: b.Drop}
	for i, p := range b.Value {
		neg.Value[i] = r.NewPoly()
		r.Neg(p, neg.Value[i])
	}
	return ev.Add(a, neg)
}

// Neg returns -a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	if debugEnabled {
		ev.ctx.debugCheckCt("Neg", a)
	}
	r := ev.ctx.RingAtDrop(a.Drop)
	out := &Ciphertext{Value: make([]*ring.Poly, len(a.Value)), Drop: a.Drop}
	for i, p := range a.Value {
		out.Value[i] = r.NewPoly()
		r.Neg(p, out.Value[i])
	}
	return out
}

// AddPlain returns ct + pt (plaintext addition: c0 += Δ·m).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if debugEnabled {
		ev.ctx.debugCheckCt("AddPlain", ct)
	}
	if ct.Drop != 0 {
		panic("bfv: plaintext operations require a full-modulus ciphertext")
	}
	r := ev.ctx.RingQ
	out := ev.ctx.CopyCt(ct)
	dm := ev.encoder.liftToQScaled(pt)
	r.Add(out.Value[0], dm, out.Value[0])
	return out
}

// SubPlain returns ct - pt.
func (ev *Evaluator) SubPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if debugEnabled {
		ev.ctx.debugCheckCt("SubPlain", ct)
	}
	if ct.Drop != 0 {
		panic("bfv: plaintext operations require a full-modulus ciphertext")
	}
	r := ev.ctx.RingQ
	out := ev.ctx.CopyCt(ct)
	dm := ev.encoder.liftToQScaled(pt)
	r.Sub(out.Value[0], dm, out.Value[0])
	return out
}

// MulScalar multiplies every slot by an unsigned integer constant —
// cheaper than a full plaintext multiply (no NTT round trip) and with
// scalar-sized noise growth.
func (ev *Evaluator) MulScalar(ct *Ciphertext, c uint64) *Ciphertext {
	if debugEnabled {
		ev.ctx.debugCheckCt("MulScalar", ct)
	}
	r := ev.ctx.RingAtDrop(ct.Drop)
	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value)), Drop: ct.Drop}
	cc := ev.ctx.T.Reduce(c)
	for i, p := range ct.Value {
		out.Value[i] = r.NewPoly()
		r.MulScalar(p, cc, out.Value[i])
	}
	return out
}

// AddMany sums a batch of ciphertexts with a balanced tree, keeping
// the additive noise growth logarithmic in the operand count.
func (ev *Evaluator) AddMany(cts []*Ciphertext) (*Ciphertext, error) {
	if len(cts) == 0 {
		return nil, fmt.Errorf("bfv: AddMany of zero ciphertexts")
	}
	layer := append([]*Ciphertext(nil), cts...)
	for len(layer) > 1 {
		var next []*Ciphertext
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, ev.Add(layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	return layer[0], nil
}

// PlaintextMul is a plaintext operand pre-transformed to the NTT domain
// of the data ring, ready for repeated MulPlain use (e.g. fixed model
// weights).
type PlaintextMul struct {
	NTT *ring.Poly
}

// PrepareMul lifts and NTT-transforms a plaintext for multiplication.
func (ev *Evaluator) PrepareMul(pt *Plaintext) *PlaintextMul {
	p := ev.encoder.liftToQ(pt)
	ev.ctx.RingQ.NTT(p)
	return &PlaintextMul{NTT: p}
}

// MulPlain returns ct ⊙ pt (slot-wise product with an unencrypted
// vector; moderate noise growth, O(N log N · r) per Table 1).
func (ev *Evaluator) MulPlain(ct *Ciphertext, pm *PlaintextMul) *Ciphertext {
	if debugEnabled {
		ev.ctx.debugCheckCt("MulPlain", ct)
	}
	if ct.Drop != 0 {
		panic("bfv: plaintext operations require a full-modulus ciphertext")
	}
	r := ev.ctx.RingQ
	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value))}
	for i, p := range ct.Value {
		tmp := r.CopyPoly(p)
		r.NTT(tmp)
		r.MulCoeffs(tmp, pm.NTT, tmp)
		r.INTT(tmp)
		out.Value[i] = tmp
	}
	return out
}

// Mul returns the degree-2 tensor product of two degree-1 ciphertexts,
// computed exactly in an extended RNS basis and scaled by t/q (large
// noise growth, O(N log N · r²) per Table 1). Call Relinearize to
// return to degree 1.
func (ev *Evaluator) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	if debugEnabled {
		ev.ctx.debugCheckCt("Mul", a, b)
	}
	if len(a.Value) != 2 || len(b.Value) != 2 {
		return nil, fmt.Errorf("bfv: Mul requires degree-1 inputs (got %d, %d)", a.Degree(), b.Degree())
	}
	if a.Drop != 0 || b.Drop != 0 {
		return nil, fmt.Errorf("bfv: Mul requires full-modulus ciphertexts")
	}
	ctx := ev.ctx
	rQ := ctx.RingQ
	rE := ctx.ringE
	n := ctx.Params.N()

	// Lift all four polynomials to centered big coefficients and embed
	// into the extended basis E (large enough that the tensor product
	// is exact over E).
	lift := func(p *ring.Poly) *ring.Poly {
		vals := make([]*big.Int, n)
		rQ.PolyToBigintCentered(p, vals)
		out := rE.GetPoly()
		rE.SetCoeffsBigint(vals, out)
		rE.NTT(out)
		return out
	}
	a0, a1 := lift(a.Value[0]), lift(a.Value[1])
	b0, b1 := lift(b.Value[0]), lift(b.Value[1])

	t0 := rE.GetPoly()
	t1 := rE.GetPoly()
	t2 := rE.GetPoly()
	rE.MulCoeffs(a0, b0, t0)
	rE.MulCoeffs(a1, b1, t2)
	rE.MulCoeffs(a0, b1, t1)
	tmp := rE.GetPoly()
	rE.MulCoeffs(a1, b0, tmp)
	rE.Add(t1, tmp, t1)
	rE.PutPoly(tmp)
	rE.PutPoly(a0)
	rE.PutPoly(a1)
	rE.PutPoly(b0)
	rE.PutPoly(b1)

	// Scale each tensor component by t/Q with rounding, then reduce
	// back into the data basis.
	out := &Ciphertext{Value: make([]*ring.Poly, 3)}
	bt := new(big.Int).SetUint64(ctx.T.Value)
	num := new(big.Int)
	//lint:ignore-choco bigintloop exact t/Q tensor scaling needs the CRT composition; server-side multiply, not the client kernel
	for i, tp := range []*ring.Poly{t0, t1, t2} {
		rE.INTT(tp)
		vals := make([]*big.Int, n)
		rE.PolyToBigintCentered(tp, vals)
		for j := range vals {
			num.Mul(vals[j], bt)
			vals[j] = roundDiv(num, ctx.BigQ)
		}
		out.Value[i] = rQ.NewPoly()
		rQ.SetCoeffsBigint(vals, out.Value[i])
		rE.PutPoly(tp)
	}
	return out, nil
}

// Relinearize reduces a degree-2 ciphertext to degree 1 using the
// relinearization key.
func (ev *Evaluator) Relinearize(ct *Ciphertext) (*Ciphertext, error) {
	if debugEnabled {
		ev.ctx.debugCheckCt("Relinearize", ct)
	}
	if len(ct.Value) != 3 {
		return nil, fmt.Errorf("bfv: Relinearize requires a degree-2 ciphertext")
	}
	if ev.relin == nil {
		return nil, fmt.Errorf("bfv: no relinearization key")
	}
	d0, d1 := ev.keySwitch(ct.Value[2], ev.relin.Key)
	r := ev.ctx.RingQ
	out := &Ciphertext{Value: []*ring.Poly{r.NewPoly(), r.NewPoly()}}
	r.Add(ct.Value[0], d0, out.Value[0])
	r.Add(ct.Value[1], d1, out.Value[1])
	r.PutPoly(d0)
	r.PutPoly(d1)
	return out, nil
}

// MulRelin multiplies and relinearizes.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	c, err := ev.Mul(a, b)
	if err != nil {
		return nil, err
	}
	return ev.Relinearize(c)
}

// RotateRows rotates the two batched rows left by steps slots
// (negative steps rotate right). Requires the corresponding Galois key.
func (ev *Evaluator) RotateRows(ct *Ciphertext, steps int) (*Ciphertext, error) {
	if steps == 0 {
		return ev.ctx.CopyCt(ct), nil
	}
	g := ev.ctx.RingQ.GaloisElementForRotation(steps)
	return ev.applyGalois(ct, g)
}

// RotateColumns swaps the two rows of the batching matrix.
func (ev *Evaluator) RotateColumns(ct *Ciphertext) (*Ciphertext, error) {
	return ev.applyGalois(ct, ev.ctx.RingQ.GaloisElementRowSwap())
}

// applyGalois is the single-element rotation path, built on the same
// hoisted machinery as the batch API (a decomposition used exactly
// once). Routing both through applyGaloisDecomposed is what makes a
// serial RotateRows loop and a hoisted batch byte-identical by
// construction.
func (ev *Evaluator) applyGalois(ct *Ciphertext, g uint64) (*Ciphertext, error) {
	if debugEnabled {
		ev.ctx.debugCheckCt("applyGalois", ct)
	}
	dc, err := ev.Decompose(ct)
	if err != nil {
		return nil, err
	}
	defer dc.Release()
	return ev.applyGaloisDecomposed(dc, g)
}

// ModSwitchDown divides the ciphertext by its last data prime with
// rounding, shrinking it by one residue (8·N·deg bytes on the wire) at
// the cost of ~t·‖s‖₁/2 added noise. The paper's client-optimized
// servers use it as the last step before transmitting results: compute
// at full modulus, switch down, send small. Dropped ciphertexts
// support addition and decryption only.
func (ev *Evaluator) ModSwitchDown(ct *Ciphertext) (*Ciphertext, error) {
	if debugEnabled {
		ev.ctx.debugCheckCt("ModSwitchDown", ct)
	}
	ctx := ev.ctx
	if ct.Drop >= ctx.MaxDrop() {
		return nil, fmt.Errorf("bfv: cannot modulus-switch below one residue")
	}
	rIn := ctx.RingAtDrop(ct.Drop)
	rOut := ctx.RingAtDrop(ct.Drop + 1)
	last := rIn.Level() - 1
	qL := rIn.Moduli[last].Value
	halfQL := qL >> 1

	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value)), Drop: ct.Drop + 1}
	for vi, p := range ct.Value {
		if p.IsNTT {
			return nil, fmt.Errorf("bfv: modulus switch requires coefficient domain")
		}
		np := rOut.NewPoly()
		xl := p.Coeffs[last]
		for i, m := range rOut.Moduli {
			qlInv, ok := m.Inv(m.Reduce(qL))
			if !ok {
				return nil, fmt.Errorf("bfv: dropped modulus not invertible")
			}
			qs := m.ShoupPrecomp(qlInv)
			src := p.Coeffs[i]
			dst := np.Coeffs[i]
			for k := range dst {
				var c uint64
				if xl[k] <= halfQL {
					c = m.Reduce(xl[k])
				} else {
					c = m.Neg(m.Reduce(qL - xl[k]))
				}
				dst[k] = m.MulShoup(m.Sub(src[k], c), qlInv, qs)
			}
		}
		out.Value[vi] = np
	}
	return out, nil
}

// ModSwitchToSmallest switches down as far as decryption headroom
// allows, keeping at least marginBits of noise budget (measured needs
// the secret key, so the server uses the analytic bound: each drop
// removes one residue's bits and adds ~log2(t·N/2) noise).
func (ev *Evaluator) ModSwitchToSmallest(ct *Ciphertext, currentBudget int) (*Ciphertext, error) {
	ctx := ev.ctx
	out := ct
	budget := currentBudget
	//lint:ignore-choco bigintloop one BitLen per drop level on a handful of moduli, not per-coefficient work
	for out.Drop < ctx.MaxDrop() {
		r := ctx.RingAtDrop(out.Drop)
		lastBits := r.Moduli[r.Level()-1].BitLen()
		// Post-switch noise floor: t·(1+N)/2 in SEAL-noise units.
		floorBits := ctx.T.BitLen() + ctx.Params.LogN
		qBitsAfter := r.ModulusBig().BitLen() - lastBits
		if qBitsAfter-floorBits < 4 || budget <= lastBits+4 {
			break
		}
		next, err := ev.ModSwitchDown(out)
		if err != nil {
			return nil, err
		}
		out = next
		budget -= lastBits
	}
	return out, nil
}

// keySwitch converts a single polynomial d (coefficient domain, mod Q)
// keyed under s' into a pair (δ0, δ1) mod Q keyed under s, using the
// hybrid RNS method: decompose d per data prime, inner-product with the
// switching key over QP, then divide by the special prime P with
// rounding.
func (ev *Evaluator) keySwitch(d *ring.Poly, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	ctx := ev.ctx
	rQP := ctx.RingQP
	rQ := ctx.RingQ
	nData := len(rQ.Moduli)

	acc0 := rQP.GetPoly()
	acc1 := rQP.GetPoly()
	acc0.DeclareNTT()
	acc1.DeclareNTT()

	di := rQP.GetPoly()
	bShoup, aShoup := swk.shoup(rQP)
	for i := 0; i < nData; i++ {
		// d_i: the i-th residue row treated as an integer vector in
		// [0, q_i), embedded into every residue of QP.
		ev.embedDigit(d.Coeffs[i], i, di)
		di.DeclareCoeff()
		rQP.NTT(di)
		rQP.MulCoeffsShoupAdd2(di, swk.B[i], bShoup[i], acc0, swk.A[i], aShoup[i], acc1)
		di.DeclareCoeff() // reuse buffer next iteration
	}
	rQP.PutPoly(di)
	acc0.DeclareNTT()
	acc1.DeclareNTT()
	rQP.INTT(acc0)
	rQP.INTT(acc1)
	d0, d1 := ev.modDownByP(acc0), ev.modDownByP(acc1)
	rQP.PutPoly(acc0)
	rQP.PutPoly(acc1)
	return d0, d1
}

// modDownByP maps x mod QP to round(x/P) mod Q (coefficient domain).
func (ev *Evaluator) modDownByP(x *ring.Poly) *ring.Poly {
	ctx := ev.ctx
	rQ := ctx.RingQ
	nData := len(rQ.Moduli)
	pMod := ctx.RingQP.Moduli[nData]
	p := pMod.Value
	halfP := p >> 1

	out := rQ.GetPoly()
	xp := x.Coeffs[nData]
	for i, m := range rQ.Moduli {
		pi := ctx.pInvQ[i]
		pis := m.ShoupPrecomp(pi)
		pModQ := m.Reduce(p)
		dst := out.Coeffs[i]
		src := x.Coeffs[i][:len(dst)]
		xr := xp[:len(dst)]
		for k := range dst {
			// Centered representative of x mod P, reduced mod q_i:
			// values above P/2 stand for t − P ≡ Reduce(t) − Reduce(P),
			// which shares the canonical-form Reduce with the small case.
			t := xr[k]
			c := m.Reduce(t)
			if t > halfP {
				c = m.Sub(c, pModQ)
			}
			dst[k] = m.MulShoup(m.Sub(src[k], c), pi, pis)
		}
	}
	return out
}

// NoiseBudget returns the remaining invariant noise budget of ct in
// bits, using SEAL's definition (the one the paper's Table 4
// tabulates): v = [t·(c0 + c1·s + ...)]_q centered, budget =
// log2(q / (2·‖v‖∞)). The t-multiplication folds the r_t(q)·m
// encoding term into the measurement from encryption onward, so
// rotations — whose automorphism sign-flips would otherwise surface
// that term — correctly register as nearly free. A budget of 0 means
// the ciphertext is (about to become) undecryptable.
func NoiseBudget(ctx *Context, sk *SecretKey, ct *Ciphertext) int {
	dec := NewDecryptor(ctx, sk)
	x := dec.phase(ct)
	r := ctx.RingAtDrop(ct.Drop)
	v := r.NewPoly()
	r.MulScalar(x, ctx.T.Value, v)
	norm := r.InfNormBig(v)

	qBits := r.ModulusBig().BitLen()
	if norm.Sign() == 0 {
		return qBits - 1
	}
	budget := qBits - 1 - (norm.BitLen() + 1)
	if budget < 0 {
		budget = 0
	}
	return budget
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
