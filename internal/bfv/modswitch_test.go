package bfv

import "testing"

func TestModSwitchDownPreservesPlaintext(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	vals := make([]uint64, kit.ctx.Params.N())
	for i := range vals {
		vals[i] = uint64(i) % kit.ctx.T.Value
	}
	ct, err := kit.enc.EncryptUints(vals)
	if err != nil {
		t.Fatal(err)
	}
	before := NoiseBudget(kit.ctx, kit.sk, ct)
	small, err := kit.ev.ModSwitchDown(ct)
	if err != nil {
		t.Fatal(err)
	}
	if small.Drop != 1 {
		t.Fatalf("drop = %d", small.Drop)
	}
	after := NoiseBudget(kit.ctx, kit.sk, small)
	t.Logf("budget before %d, after switch %d", before, after)
	if after <= 0 {
		t.Fatal("budget exhausted by the switch")
	}
	got := kit.dec.DecryptUints(small)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], vals[i])
		}
	}
}

func TestModSwitchDownAfterComputation(t *testing.T) {
	// The deployment pattern: compute at full modulus, switch, send.
	kit := newTestKit(t, PresetTest(), 1)
	vals := []uint64{3, 5, 7, 11}
	ct, _ := kit.enc.EncryptUints(vals)
	pt, _ := kit.ecd.EncodeUints([]uint64{2, 2, 2, 2})
	prod := kit.ev.MulPlain(ct, kit.ev.PrepareMul(pt))
	rot, err := kit.ev.RotateRows(prod, 1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := kit.ev.ModSwitchDown(rot)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.dec.DecryptUints(small)
	want := []uint64{10, 14, 22}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestModSwitchWireShrinks(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	ct, _ := kit.enc.EncryptUints([]uint64{1, 2, 3})
	small, err := kit.ev.ModSwitchDown(ct)
	if err != nil {
		t.Fatal(err)
	}
	if rows := len(small.Value[0].Coeffs); rows != 1 {
		t.Errorf("dropped ciphertext has %d residue rows, want 1", rows)
	}
	fullBytes := kit.ctx.Params.CiphertextBytes()
	smallBytes := kit.ctx.DroppedCiphertextBytes(1)
	if smallBytes*2 != fullBytes {
		t.Errorf("dropped size %d, full %d", smallBytes, fullBytes)
	}
}

func TestModSwitchFloor(t *testing.T) {
	kit := newTestKit(t, PresetTest())
	ct, _ := kit.enc.EncryptUints([]uint64{1})
	small, err := kit.ev.ModSwitchDown(ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kit.ev.ModSwitchDown(small); err == nil {
		t.Error("expected error switching below one residue")
	}
}

func TestDroppedCiphertextOpsRestricted(t *testing.T) {
	kit := newTestKit(t, PresetTest(), 1)
	a, _ := kit.enc.EncryptUints([]uint64{1, 2})
	b, _ := kit.enc.EncryptUints([]uint64{10, 20})
	da, err := kit.ev.ModSwitchDown(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := kit.ev.ModSwitchDown(b)
	if err != nil {
		t.Fatal(err)
	}
	// Additions still work at matching levels.
	sum := kit.ev.Add(da, db)
	got := kit.dec.DecryptUints(sum)
	if got[0] != 11 || got[1] != 22 {
		t.Errorf("dropped add: %v", got[:2])
	}
	// Mixed levels and multiplicative ops fail loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic adding mixed levels")
			}
		}()
		kit.ev.Add(a, db)
	}()
	if _, err := kit.ev.RotateRows(da, 1); err == nil {
		t.Error("expected rotation rejection at dropped level")
	}
	if _, err := kit.ev.Mul(da, db); err == nil {
		t.Error("expected Mul rejection at dropped level")
	}
}

func TestModSwitchToSmallest(t *testing.T) {
	// A three-residue chain can shed two residues when the budget is
	// healthy.
	params := Parameters{LogN: 11, QBits: []int{40, 40, 40}, PBits: 41, TBits: 16, Sigma: 3.2}
	kit := newTestKit(t, params)
	vals := []uint64{1, 2, 3, 4}
	ct, _ := kit.enc.EncryptUints(vals)
	budget := NoiseBudget(kit.ctx, kit.sk, ct)
	small, err := kit.ev.ModSwitchToSmallest(ct, budget)
	if err != nil {
		t.Fatal(err)
	}
	if small.Drop == 0 {
		t.Error("expected at least one drop with a fresh budget")
	}
	got := kit.dec.DecryptUints(small)
	for i, w := range vals {
		if got[i] != w {
			t.Fatalf("slot %d: got %d want %d", i, got[i], w)
		}
	}
	t.Logf("dropped %d of %d residues; final budget %d",
		small.Drop, len(params.QBits), NoiseBudget(kit.ctx, kit.sk, small))
}
