// Command chococlient is the trusted client of the TCP demo: it
// generates keys, opens a session with a running chocoserver, then
// performs client-aided encrypted inference on synthetic images —
// printing the logits and the full client cost accounting (the
// quantities CHOCO optimizes).
//
// Sessions open under a client-chosen session ID, so a reconnecting
// client whose evaluation keys are still cached server-side skips the
// multi-megabyte key upload (-reconnect demonstrates this and reports
// the bytes saved). Sessions may also declare a tenant (-tenant): a
// server enforcing per-tenant quotas answers over-quota opens with a
// busy ack carrying a retry-after hint, which workers honor for up to
// -busy-retries attempts before failing.
//
// With -concurrency > 1 (or -requests set) it becomes a load
// generator: N independent clients — separate keys, separate sessions
// — each stream R inferences at the server, and the run exits with
// aggregate throughput and p50/p99 latency.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"choco/internal/fabric"
	"choco/internal/nn"
	"choco/internal/protocol"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7312", "server address")
	imageSeed := flag.Int("image-seed", 1, "synthetic image seed")
	keySeed := flag.Int("key-seed", 42, "client key seed (worker i uses key-seed+i)")
	count := flag.Int("count", 1, "inferences to run (alias of -requests)")
	concurrency := flag.Int("concurrency", 1, "parallel client sessions")
	requests := flag.Int("requests", 0, "inferences per session (0 = use -count)")
	sessionBase := flag.String("session-id", "", "session ID prefix (default derived from key seed)")
	reconnect := flag.Bool("reconnect", false, "disconnect halfway and reconnect under the same session ID to exercise the server's evaluation-key cache")
	tenant := flag.String("tenant", "", "tenant ID declared in the session hello; over-quota rejections are retried after the server's retry-after hint")
	busyRetries := flag.Int("busy-retries", 3, "how many times a worker retries a session rejected over tenant quota before giving up")
	fleetStats := flag.String("fleet-stats", "", "after the run, fetch and summarize the fabric router's fleet view from this URL (e.g. http://127.0.0.1:7400/fleet)")
	flag.Parse()

	perWorker := *requests
	if perWorker <= 0 {
		perWorker = *count
	}
	base := *sessionBase
	if base == "" {
		base = fmt.Sprintf("chococlient-k%d", *keySeed)
	}
	loadgen := *concurrency > 1 || *requests > 0

	network := nn.DemoNetwork()
	start := time.Now()
	var (
		mu             sync.Mutex
		latencies      []time.Duration
		agg            workerReport
		failures       int
		droppedSamples int
		droppedUp      int64
		droppedDown    int64
	)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rep, err := runWorker(workerConfig{
				addr: *addr, network: network,
				keySeed: *keySeed + w, imageSeed: *imageSeed + w*1000,
				sessionID: fmt.Sprintf("%s-w%d", base, w),
				requests:  perWorker, reconnect: *reconnect,
				tenant: *tenant, busyRetries: *busyRetries,
				verbose: !loadgen,
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				// A failed worker's partial samples and traffic would
				// silently skew p50/p99 and the MB totals; keep them out
				// of the aggregate and account for them separately.
				failures++
				droppedSamples += len(rep.latencies)
				droppedUp += rep.upBytes
				droppedDown += rep.downBytes
				log.Printf("worker %d: %v", w, err)
				return
			}
			latencies = append(latencies, rep.latencies...)
			agg.merge(rep)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	if failures == *concurrency {
		log.Fatalf("all %d worker(s) failed", *concurrency)
	}
	if !loadgen && !*reconnect {
		return // single-session mode already printed per-inference detail
	}

	fmt.Printf("\n=== aggregate: %d session(s), %d inference(s), %d worker failure(s) ===\n",
		*concurrency, len(latencies), failures)
	if failures > 0 {
		fmt.Printf("excluded from aggregate: %d partial sample(s) and %.1f MB up / %.1f MB down from %d failed worker(s)\n",
			droppedSamples, float64(droppedUp)/(1<<20), float64(droppedDown)/(1<<20), failures)
	}
	fmt.Printf("wall time %v | throughput %.2f inf/s\n",
		wall.Round(time.Millisecond), float64(len(latencies))/wall.Seconds())
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		fmt.Printf("latency p50 %v | p99 %v | min %v | max %v\n",
			pct(latencies, 0.50).Round(time.Millisecond), pct(latencies, 0.99).Round(time.Millisecond),
			latencies[0].Round(time.Millisecond), latencies[len(latencies)-1].Round(time.Millisecond))
	}
	fmt.Printf("traffic up %.1f MB | down %.1f MB | enc %d | dec %d\n",
		float64(agg.upBytes)/(1<<20), float64(agg.downBytes)/(1<<20), agg.encryptions, agg.decryptions)
	fmt.Printf("key setup: first connect %.1f MB up", float64(agg.setupBytes)/(1<<20))
	if *reconnect {
		fmt.Printf(" | reconnect %.1f KB up (%d/%d cached — evaluation keys not re-uploaded)",
			float64(agg.resetupBytes)/(1<<10), agg.cachedReconnects, *concurrency)
	}
	fmt.Println()

	if *fleetStats != "" {
		if err := printFleetStats(*fleetStats); err != nil {
			log.Printf("fleet stats: %v", err)
		}
	}
}

// printFleetStats fetches the fabric router's aggregated fleet view and
// prints the signals a load-gen run cares about: how the sessions
// spread over the shards and how many key uploads the fabric absorbed
// via shard-to-shard replication.
func printFleetStats(url string) error {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var fs fabric.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		return fmt.Errorf("decoding fleet stats: %w", err)
	}
	fmt.Printf("\n=== fleet (%d/%d shard(s) reachable) ===\n", fs.Fleet.ShardsReachable, fs.Fleet.ShardsTotal)
	fmt.Printf("sessions %d (%d active, %d rejected) | inferences %d | worst shard p99 %v\n",
		fs.Fleet.SessionsTotal, fs.Fleet.SessionsActive, fs.Fleet.SessionsRejected,
		fs.Fleet.Inferences, fs.Fleet.InferenceP99Max)
	fmt.Printf("key cache: %d entr(ies), %.1f MB | %d hit(s) / %d miss(es) | %d replication(s) (uploads absorbed shard-to-shard)\n",
		fs.Fleet.KeyCacheEntries, float64(fs.Fleet.KeyCacheBytes)/(1<<20),
		fs.Fleet.KeyCacheHits, fs.Fleet.KeyCacheMisses, fs.Fleet.KeyReplications)
	fmt.Printf("router: %d session(s) routed, %d replication hint(s), %d ejection(s)\n",
		fs.Router.RoutedSessions, fs.Router.ReplicationHints, fs.Router.Ejections)
	for _, m := range fs.Router.Members {
		snap := fs.Shards[m.ID]
		state := "alive"
		if !m.Alive {
			state = "ejected"
		} else if m.Draining {
			state = "draining"
		}
		if snap.Reachable {
			fmt.Printf("  %-12s %-8s %d session(s), %d inference(s), %d cached key bundle(s)\n",
				m.ID, state, snap.Stats.SessionsTotal, snap.Stats.Inferences, snap.Stats.KeyCacheEntries)
		} else {
			fmt.Printf("  %-12s %-8s unreachable: %s\n", m.ID, state, snap.Error)
		}
	}
	return nil
}

type workerConfig struct {
	addr        string
	network     *nn.Network
	keySeed     int
	imageSeed   int
	sessionID   string
	requests    int
	reconnect   bool
	tenant      string
	busyRetries int
	verbose     bool
}

type workerReport struct {
	latencies          []time.Duration
	upBytes, downBytes int64
	encryptions        int
	decryptions        int
	setupBytes         int64 // transport bytes up at first session open
	resetupBytes       int64 // transport bytes up at reconnect session open
	cachedReconnects   int
}

func (a *workerReport) merge(b workerReport) {
	a.latencies = append(a.latencies, b.latencies...)
	a.upBytes += b.upBytes
	a.downBytes += b.downBytes
	a.encryptions += b.encryptions
	a.decryptions += b.decryptions
	a.setupBytes += b.setupBytes
	a.resetupBytes += b.resetupBytes
	a.cachedReconnects += b.cachedReconnects
}

// runWorker drives one client session (optionally split across a
// reconnect) through its share of inferences.
func runWorker(cfg workerConfig) (workerReport, error) {
	var rep workerReport
	var kseed [32]byte
	kseed[0], kseed[1] = byte(cfg.keySeed), byte(cfg.keySeed>>8)
	client, err := nn.NewInferenceClient(cfg.network, kseed)
	if err != nil {
		return rep, fmt.Errorf("client setup: %w", err)
	}

	// dial opens (or re-opens) the session. An over-quota rejection
	// carries the server's retry-after hint; the worker honors it for a
	// bounded number of attempts before giving up, so a busy tenant
	// backs off at the pace the shard asked for instead of hammering it.
	dial := func() (*protocol.Conn, bool, time.Duration, error) {
		for attempt := 0; ; attempt++ {
			conn, err := net.Dial("tcp", cfg.addr)
			if err != nil {
				return nil, false, 0, fmt.Errorf("dial: %w", err)
			}
			tr := protocol.NewConn(conn)
			t0 := time.Now()
			cached, err := client.SetupSessionTenant(tr, cfg.sessionID, cfg.tenant)
			if err == nil {
				return tr, cached, time.Since(t0), nil
			}
			_ = tr.Close() // the session-open failure is the error that matters
			var busy *nn.BusyError
			if !errors.As(err, &busy) || busy.RetryAfter <= 0 || attempt >= cfg.busyRetries {
				return nil, false, 0, fmt.Errorf("session open: %w", err)
			}
			if cfg.verbose {
				fmt.Printf("session %q: tenant over quota, retrying in %v (%d/%d)\n",
					cfg.sessionID, busy.RetryAfter, attempt+1, cfg.busyRetries)
			}
			time.Sleep(busy.RetryAfter)
		}
	}

	tr, cached, setupTime, err := dial()
	if err != nil {
		return rep, err
	}
	rep.setupBytes = tr.SentBytes()
	if cfg.verbose {
		if cached {
			fmt.Printf("session %q: evaluation keys cached server-side, upload skipped (%d B in %v)\n",
				cfg.sessionID, tr.SentBytes(), setupTime.Round(time.Millisecond))
		} else {
			fmt.Printf("session %q: evaluation keys shipped in %v (%d bytes)\n",
				cfg.sessionID, setupTime.Round(time.Millisecond), tr.SentBytes())
		}
	}

	firstLeg := cfg.requests
	if cfg.reconnect && cfg.requests > 1 {
		firstLeg = (cfg.requests + 1) / 2
	}
	infer := func(i int) error {
		var iseed [32]byte
		iseed[0], iseed[1] = byte(cfg.imageSeed+i), byte((cfg.imageSeed+i)>>8)
		img := nn.SynthesizeImage(cfg.network, 4, iseed)
		t0 := time.Now()
		logits, stats, err := client.Infer(img, tr)
		if err != nil {
			return fmt.Errorf("inference %d: %w", i, err)
		}
		elapsed := time.Since(t0)
		rep.latencies = append(rep.latencies, elapsed)
		rep.upBytes += stats.UpBytes
		rep.downBytes += stats.DownBytes
		rep.encryptions += stats.Encryptions
		rep.decryptions += stats.Decryptions
		if cfg.verbose {
			best, bestV := 0, logits[0]
			for j, v := range logits {
				if v > bestV {
					best, bestV = j, v
				}
			}
			fmt.Printf("inference %d: class %d, logits %v\n", i, best, logits)
			fmt.Printf("  wall time %v | enc %d dec %d | up %.1f KB down %.1f KB\n",
				elapsed.Round(time.Millisecond), stats.Encryptions, stats.Decryptions,
				float64(stats.UpBytes)/1024, float64(stats.DownBytes)/1024)
		}
		return nil
	}

	for i := 0; i < firstLeg; i++ {
		if err := infer(i); err != nil {
			_ = tr.Close() // the inference failure is the error that matters
			return rep, err
		}
	}
	if firstLeg == cfg.requests {
		return rep, tr.Close()
	}

	// Reconnect under the same session ID: with the server's key
	// registry warm, SetupSession should come back cached and the
	// transport's sent bytes stay tiny (hello frame only).
	if err := tr.Close(); err != nil {
		return rep, fmt.Errorf("closing before reconnect: %w", err)
	}
	tr, cached, setupTime, err = dial()
	if err != nil {
		return rep, fmt.Errorf("reconnect: %w", err)
	}
	rep.resetupBytes = tr.SentBytes()
	if cached {
		rep.cachedReconnects++
	}
	if cfg.verbose {
		fmt.Printf("reconnected session %q in %v: cached=%v, %d B up (vs %d B first connect)\n",
			cfg.sessionID, setupTime.Round(time.Millisecond), cached, tr.SentBytes(), rep.setupBytes)
	}
	for i := firstLeg; i < cfg.requests; i++ {
		if err := infer(i); err != nil {
			_ = tr.Close() // the inference failure is the error that matters
			return rep, err
		}
	}
	return rep, tr.Close()
}

// pct indexes a sorted latency slice at quantile q.
func pct(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
