// Command chococlient is the trusted client of the TCP demo: it
// generates keys, ships the evaluation keys to a running chocoserver,
// then performs client-aided encrypted inference on a synthetic image
// — printing the logits and the full client cost accounting (the
// quantities CHOCO optimizes).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"choco/internal/nn"
	"choco/internal/protocol"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7312", "server address")
	imageSeed := flag.Int("image-seed", 1, "synthetic image seed")
	keySeed := flag.Int("key-seed", 42, "client key seed")
	count := flag.Int("count", 1, "inferences to run")
	flag.Parse()

	network := nn.DemoNetwork()
	var kseed [32]byte
	kseed[0] = byte(*keySeed)
	client, err := nn.NewInferenceClient(network, kseed)
	if err != nil {
		log.Fatalf("client setup: %v", err)
	}

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	tr := protocol.NewConn(conn)

	start := time.Now()
	if err := client.Setup(tr); err != nil {
		log.Fatalf("key setup: %v", err)
	}
	fmt.Printf("evaluation keys shipped in %v (%d bytes)\n", time.Since(start).Round(time.Millisecond), tr.SentBytes())

	for i := 0; i < *count; i++ {
		var iseed [32]byte
		iseed[0] = byte(*imageSeed + i)
		img := nn.SynthesizeImage(network, 4, iseed)

		start = time.Now()
		logits, stats, err := client.Infer(img, tr)
		if err != nil {
			log.Fatalf("inference: %v", err)
		}
		elapsed := time.Since(start)

		best, bestV := 0, logits[0]
		for j, v := range logits {
			if v > bestV {
				best, bestV = j, v
			}
		}
		fmt.Printf("inference %d: class %d, logits %v\n", i, best, logits)
		fmt.Printf("  wall time %v | enc %d dec %d | up %.1f KB down %.1f KB\n",
			elapsed.Round(time.Millisecond), stats.Encryptions, stats.Decryptions,
			float64(stats.UpBytes)/1024, float64(stats.DownBytes)/1024)
	}
}
