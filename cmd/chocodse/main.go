// Command chocodse runs the CHOCO-TACO design-space exploration
// standalone: sweep all accelerator configurations at a chosen
// parameter shape, print the Pareto frontier, and select an operating
// point under a power cap (§4.4).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"choco/internal/accel"
	"choco/internal/device"
)

func main() {
	n := flag.Int("n", 8192, "ring degree N")
	k := flag.Int("k", 3, "RNS residue count k")
	powerCap := flag.Float64("power", 0.200, "power cap in watts")
	slack := flag.Float64("slack", 0.01, "allowed time slack over the fastest design")
	frontierN := flag.Int("frontier", 10, "frontier samples to print")
	flag.Parse()

	shape := device.HEShape{N: *n, K: *k}
	points := accel.Explore(shape)
	fmt.Printf("explored %d configurations at (N=%d, k=%d)\n", len(points), *n, *k)

	frontier := accel.ParetoFrontier(points)
	fmt.Printf("pareto frontier: %d designs\n", len(frontier))
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].TimeS < frontier[j].TimeS })
	step := len(frontier) / *frontierN
	if step < 1 {
		step = 1
	}
	fmt.Printf("%-12s %-10s %-10s %-12s %s\n", "time (ms)", "power(mW)", "area(mm²)", "energy(mJ)", "config")
	for i := 0; i < len(frontier); i += step {
		p := frontier[i]
		fmt.Printf("%-12.3f %-10.1f %-10.1f %-12.4f %+v\n",
			p.TimeS*1e3, p.PowerW*1e3, p.AreaMM2, p.EnergyJ*1e3, p.Config)
	}

	chosen, ok := accel.SelectOperatingPoint(points, *powerCap, *slack)
	if !ok {
		fmt.Fprintf(os.Stderr, "no design satisfies the %.0f mW cap\n", *powerCap*1e3)
		os.Exit(1)
	}
	fmt.Printf("\nchosen operating point (cap %.0f mW, slack %.0f%%):\n", *powerCap*1e3, *slack*100)
	fmt.Printf("  %+v\n", chosen.Config)
	fmt.Printf("  encrypt %.3f ms, power %.1f mW, area %.1f mm², energy %.4f mJ\n",
		chosen.TimeS*1e3, chosen.PowerW*1e3, chosen.AreaMM2, chosen.EnergyJ*1e3)
	fmt.Printf("  decrypt %.3f ms\n", chosen.Config.DecryptTime(shape)*1e3)
}
