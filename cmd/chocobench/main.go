// Command chocobench regenerates the paper's evaluation tables and
// figures from this implementation and prints them as text reports.
//
// Usage:
//
//	chocobench                 # run everything
//	chocobench table4 fig12    # run selected experiments
//	chocobench -list           # list experiment names
//
// The trajectory experiment measures the pinned perf series (client
// encrypt, hoisted rotation batch, serve p99) and, with -trajectory,
// appends commit-stamped JSONL entries to the named file, warning when
// a series regressed more than 10% against the rolling median of its
// last five entries. Once a series has at least eight history points,
// a regression beyond its noise gate — max(10%, 3·MAD/median over the
// cached history) — is a hard failure (exit 1), so CI blocks the
// slowdown instead of just annotating it:
//
//	chocobench -trajectory BENCH_trajectory.jsonl -commit "$(git rev-parse --short HEAD)" trajectory
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"choco/internal/bench"
)

type experiment struct {
	name string
	desc string
	run  func() (string, error)
}

// jsonBodies collects the machine-readable side of experiments that
// produce one (keyed by experiment name) for the -json flag.
var jsonBodies = map[string][]byte{}

func experiments() []experiment {
	return []experiment{
		{"rotations", "serial vs hoisted rotation batches (perf trajectory)", func() (string, error) {
			out, recs, err := bench.Rotations()
			if err == nil {
				body, jerr := bench.RotationsJSON(recs)
				if jerr != nil {
					return "", jerr
				}
				jsonBodies["rotations"] = body
			}
			return out, err
		}},
		{"matmul", "FC matmul across hoisting levels L1/L2/L3 (perf trajectory)", func() (string, error) {
			out, recs, err := bench.Matmul()
			if err == nil {
				body, jerr := bench.MatmulJSON(recs)
				if jerr != nil {
					return "", jerr
				}
				jsonBodies["matmul"] = body
			}
			return out, err
		}},
		{"client", "client encrypt/decrypt kernels: RNS-native vs big.Int oracle", func() (string, error) {
			out, recs, err := bench.Client()
			if err == nil {
				body, jerr := bench.ClientJSON(recs)
				if jerr != nil {
					return "", jerr
				}
				jsonBodies["client"] = body
			}
			return out, err
		}},
		{"kernels", "SIMD kernel layer: scalar vs vector NTT/dyadic/BLAKE3 at 1 CPU", func() (string, error) {
			out, recs, err := bench.Kernels()
			if err == nil {
				body, jerr := bench.KernelsJSON(recs)
				if jerr != nil {
					return "", jerr
				}
				jsonBodies["kernels"] = body
			}
			return out, err
		}},
		{"batching", "cross-request batching: coalesced vs per-session shard kernel", func() (string, error) {
			out, recs, err := bench.Batching()
			if err == nil {
				body, jerr := bench.BatchingJSON(recs)
				if jerr != nil {
					return "", jerr
				}
				jsonBodies["batching"] = body
			}
			return out, err
		}},
		{"table1", "HE operation complexity (measured)", bench.Table1},
		{"table3", "parameter presets and ciphertext sizes", bench.Table3},
		{"table4", "noise budgets: rotate vs masked permute", func() (string, error) {
			out, _, err := bench.Table4()
			return out, err
		}},
		{"table5", "evaluation networks", bench.Table5},
		{"fig2", "client compute breakdown (software / partial HW)", bench.Fig2},
		{"fig7", "accelerator design-space exploration", bench.Fig7},
		{"fig8", "encryption scaling: hardware vs software", func() (string, error) {
			out, _, err := bench.Fig8()
			return out, err
		}},
		{"fig10", "communication vs prior protocols", bench.Fig10},
		{"fig11", "distance-kernel packing tradeoffs", func() (string, error) {
			out, _, err := bench.Fig11()
			return out, err
		}},
		{"fig11-live", "measured distance-kernel variants (live CKKS)", bench.Fig11Live},
		{"fig12", "client compute with CHOCO-TACO", func() (string, error) {
			out, _, err := bench.Fig12()
			return out, err
		}},
		{"fig13", "PageRank communication vs iterations", bench.Fig13},
		{"fig14", "end-to-end time & energy vs local inference", func() (string, error) {
			out, _, err := bench.Fig14()
			return out, err
		}},
		{"fig15", "MACs vs communication per conv layer", func() (string, error) {
			out, _, err := bench.Fig15()
			return out, err
		}},
		{"headline", "CHOCO-TACO headline speedups", func() (string, error) {
			return bench.EncDecSpeedups(), nil
		}},
		{"ablation-rotred", "rotational redundancy vs masked permutation", bench.AblationRotRed},
		{"ablation-bsgs", "BSGS vs naive diagonal matrix-vector", bench.AblationBSGS},
		{"ablation-params", "parameter minimization vs SEAL defaults", bench.AblationParamMinimization},
		{"ablation-batch", "packed (latency) vs batched (throughput) packing", bench.AblationPackedVsBatched},
		{"setup-costs", "one-time evaluation-key shipment per network", bench.SetupCosts},
	}
}

func main() {
	list := flag.Bool("list", false, "list experiment names and exit")
	jsonPath := flag.String("json", "", "write the selected record-producing experiment's records to this path as JSON")
	trajectoryPath := flag.String("trajectory", "", "append the trajectory experiment's points to this JSONL file (warns on >10% regression vs each series' rolling median; fails hard past a series' noise gate once it has 8+ history points)")
	commit := flag.String("commit", "local", "commit hash to stamp trajectory points with")
	flag.Parse()

	exps := append(experiments(), experiment{
		"trajectory", "pinned perf series: client encrypt, hoisted rotation batch, serve p99, ntt row",
		func() (string, error) {
			out, pts, err := bench.Trajectory(*commit, time.Now().Unix())
			if err != nil || *trajectoryPath == "" {
				return out, err
			}
			warnings, failures, err := bench.AppendTrajectory(*trajectoryPath, pts)
			if err != nil {
				return "", fmt.Errorf("appending %s: %w", *trajectoryPath, err)
			}
			for _, w := range warnings {
				fmt.Fprintf(os.Stderr, "trajectory warning: %s\n", w)
			}
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "trajectory FAILURE: %s\n", f)
			}
			out += fmt.Sprintf("appended %d point(s) to %s (%d regression warning(s), %d failure(s))\n",
				len(pts), *trajectoryPath, len(warnings), len(failures))
			if len(failures) > 0 {
				// The points are already appended — the history records
				// the regression — but the run itself is a hard failure.
				return out, fmt.Errorf("%d pinned series regressed beyond their noise gates: %s",
					len(failures), strings.Join(failures, "; "))
			}
			return out, nil
		},
	})
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}

	selected := map[string]bool{}
	for _, a := range flag.Args() {
		selected[a] = true
	}
	ranAny := false
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		ranAny = true
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%s) [%v]\n%s\n", e.name, e.desc, time.Since(start).Round(time.Millisecond), out)
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "no matching experiments; use -list\n")
		os.Exit(1)
	}
	if *jsonPath != "" {
		if len(jsonBodies) == 0 {
			fmt.Fprintf(os.Stderr, "-json set but no record-producing experiment ran (rotations, matmul, client, batching, kernels)\n")
			os.Exit(1)
		}
		if len(jsonBodies) > 1 {
			fmt.Fprintf(os.Stderr, "-json set but several record-producing experiments ran; select one\n")
			os.Exit(1)
		}
		for name, body := range jsonBodies {
			if err := os.WriteFile(*jsonPath, body, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%s records)\n", *jsonPath, name)
		}
	}
}
