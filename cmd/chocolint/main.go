// Command chocolint runs the CHOCO-specific static analyzers over the
// module and prints findings as file:line:col: analyzer: message, one
// per line, exiting non-zero if any survive suppression. See
// internal/lint for the analyzer catalogue and the
// //lint:ignore-choco suppression convention.
//
// Usage:
//
//	chocolint [-list] [packages]
//
// Packages default to ./... relative to the current directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"choco/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chocolint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", patterns, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "chocolint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "chocolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
