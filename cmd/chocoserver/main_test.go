package main

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"choco/internal/serve"
)

// Regression for the session-limit watcher goroutine: it used to range
// a ticker channel forever, so after cancel() it kept polling Stats on
// a server that was already gone. The rewritten watcher must fire done
// when the limit is reached and must exit on context cancellation.

func TestWatchSessionLimitFiresDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var calls atomic.Int64
	stats := func() serve.Stats {
		calls.Add(1)
		return serve.Stats{SessionsTotal: 3, SessionsActive: 0}
	}

	fired := make(chan struct{})
	go watchSessionLimit(ctx, stats, 3, time.Millisecond, func() { close(fired) })

	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never fired done despite the limit being reached")
	}
	if calls.Load() == 0 {
		t.Fatal("watcher fired without consulting stats")
	}
}

func TestWatchSessionLimitExitsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())

	stats := func() serve.Stats {
		// Limit never reached: only cancellation can stop the watcher.
		return serve.Stats{SessionsTotal: 0, SessionsActive: 1}
	}

	exited := make(chan struct{})
	go func() {
		watchSessionLimit(ctx, stats, 10, time.Millisecond, func() {
			t.Error("done fired though the session limit was never reached")
		})
		close(exited)
	}()

	cancel()
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not exit after context cancellation")
	}
}
