// Command chocoserver runs the untrusted CHOCO offload tier over TCP.
// The server never holds secret key material; it sees only ciphertexts
// and public evaluation keys.
//
// It runs in one of three modes (-mode):
//
//   - serve (default): a single standalone session server built on
//     internal/serve — bounded worker pool with admission control, an
//     evaluation-key cache so reconnecting clients skip the key
//     re-upload, idle and per-frame I/O deadlines. Rotation-bearing
//     layer work from concurrent same-preset sessions is coalesced by
//     the cross-request batching executor (-batch-depth/-batch-window),
//     and clients that declare a tenant are subject to the per-tenant
//     session quota (-tenant-max-sessions), rejected over quota with a
//     busy ack carrying the -retry-after hint.
//   - shard: the same server plus the fabric peer listener
//     (-peer-addr), which answers key-fetch, health-probe, and stats
//     requests from the router and sibling shards. Run N of these
//     behind one router to scale the tier horizontally.
//   - router: the fabric front door. Terminates client connections,
//     consistent-hashes session IDs onto the shards listed in -shards,
//     splices frames, replicates cached evaluation keys shard-to-shard
//     when membership changes move a session, ejects unhealthy shards,
//     and serves the aggregated fleet view on -stats-addr.
//
// Every mode exposes accounting on an optional HTTP endpoint
// (-stats-addr): /stats (JSON snapshot), /healthz (readiness; 503 while
// draining), /debug/vars (expvar); the router serves /fleet with the
// fleet-wide aggregation.
//
// The demo model is the small LeNet-style network also used by the
// examples. Clients only need the architecture (nn.DemoNetwork); the
// weights stay server-side — the centralized-model deployment of §1.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"choco/internal/fabric"
	"choco/internal/nn"
	"choco/internal/par"
	"choco/internal/serve"
)

func main() {
	mode := flag.String("mode", "serve", "serve (standalone), shard (serve + fabric peer listener), or router (fabric front door)")
	addr := flag.String("addr", "127.0.0.1:7312", "listen address for client sessions")
	peerAddr := flag.String("peer-addr", "", "shard mode: listen address for the fabric peer protocol (key fetch, health, stats)")
	shardsFlag := flag.String("shards", "", "router mode: comma-separated members, each id=clientAddr/peerAddr (peerAddr optional)")
	shardID := flag.String("shard-id", "", "shard mode: this shard's name on the router's ring (default: the listen address)")
	weightSeed := flag.Int("weight-seed", 7, "deterministic weight seed (server-only; clients never see weights)")
	sessions := flag.Int("sessions", 0, "exit after this many sessions (0 = serve forever; serve/shard modes)")
	maxSessions := flag.Int("max-sessions", 8, "max concurrent sessions (worker pool size)")
	queueTimeout := flag.Duration("queue-timeout", 0, "how long a connection waits for a free worker slot before rejection (0 = reject immediately)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max gap between a client's requests before the session is closed")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "per-frame read/write deadline during an exchange")
	keyCache := flag.Int("key-cache", 64, "evaluation-key registry capacity (cached sessions for reconnects)")
	keyCacheBytes := flag.Int64("key-cache-bytes", 1<<30, "evaluation-key registry byte budget (bundles are multi-MB each)")
	batchDepth := flag.Int("batch-depth", 8, "max requests coalesced per cross-request batching round (1 disables batching)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long a batching round gathers for co-batchable requests before executing short")
	batchCacheBytes := flag.Int64("batch-cache-bytes", 256<<20, "byte budget of the shared weight-plaintext cache backing batched execution")
	tenantMaxSessions := flag.Int("tenant-max-sessions", 0, "max concurrent sessions per declared tenant (0 = no per-tenant quota)")
	retryAfter := flag.Duration("retry-after", 250*time.Millisecond, "retry-after hint sent with the busy ack when a tenant is over quota")
	statsAddr := flag.String("stats-addr", "", "serve accounting over HTTP on this address; empty disables")
	parallelism := flag.Int("parallelism", 0, "width of the process-wide HE worker pool shared by all sessions (0 = GOMAXPROCS, 1 = serial)")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "router mode: shard health-probe period")
	flag.Parse()

	if *parallelism > 0 {
		par.SetParallelism(*parallelism)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("chocoserver: shutdown requested, draining in-flight work")
		cancel()
	}()

	switch *mode {
	case "serve", "shard":
		runServe(ctx, cancel, serveOpts{
			mode: *mode, addr: *addr, peerAddr: *peerAddr, shardID: *shardID,
			weightSeed: *weightSeed, sessions: *sessions, statsAddr: *statsAddr,
			cfg: serve.Config{
				MaxSessions:       *maxSessions,
				QueueTimeout:      *queueTimeout,
				IdleTimeout:       *idleTimeout,
				IOTimeout:         *ioTimeout,
				KeyCacheCap:       *keyCache,
				KeyCacheBytes:     *keyCacheBytes,
				BatchDepth:        *batchDepth,
				BatchWindow:       *batchWindow,
				BatchCacheBytes:   *batchCacheBytes,
				TenantMaxSessions: *tenantMaxSessions,
				RetryAfter:        *retryAfter,
				Logf:              log.Printf,
			},
		})
	case "router":
		runRouter(ctx, *addr, *shardsFlag, *statsAddr, *healthEvery, *idleTimeout, *ioTimeout)
	default:
		log.Fatalf("unknown -mode %q (want serve, shard, or router)", *mode)
	}
}

type serveOpts struct {
	mode, addr, peerAddr, shardID string
	weightSeed, sessions          int
	statsAddr                     string
	cfg                           serve.Config
}

// watchSessionLimit polls the server's accounting until the configured
// number of sessions has completed with none in flight, then fires
// done. It exits when ctx is cancelled, so the watcher cannot outlive
// the server it is supposed to stop (a goroutine ranging a ticker
// channel has no such exit — chocolint's goroleak flags that shape).
func watchSessionLimit(ctx context.Context, stats func() serve.Stats, limit int, every time.Duration, done func()) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			st := stats()
			if st.SessionsTotal >= int64(limit) && st.SessionsActive == 0 {
				done()
				return
			}
		}
	}
}

func runServe(ctx context.Context, cancel context.CancelFunc, o serveOpts) {
	net0 := nn.DemoNetwork()
	var seed [32]byte
	seed[0] = byte(o.weightSeed)
	model := nn.SynthesizeWeights(net0, 4, seed)
	backend, err := nn.NewInferenceServer(model)
	if err != nil {
		log.Fatalf("compile model: %v", err)
	}

	id := o.shardID
	if id == "" {
		id = o.addr
	}
	shard := fabric.NewShard(id, backend, o.cfg)
	srv := shard.Server

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("chocoserver[%s]: serving %s (%d-layer model, %d MACs) on %s, %d worker slot(s), HE parallelism %d",
		o.mode, net0.Name, len(net0.Layers), net0.MACs(), o.addr, srv.MaxSessions(), par.Parallelism())

	if o.statsAddr != "" {
		expvar.Publish("choco_serve", expvar.Func(func() any { return srv.Stats() }))
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		mux.Handle("/healthz", srv.HealthHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			log.Printf("chocoserver: stats on http://%s/stats, readiness on /healthz", o.statsAddr)
			if err := http.ListenAndServe(o.statsAddr, mux); err != nil {
				log.Printf("stats endpoint: %v", err)
			}
		}()
	}

	if o.sessions > 0 {
		go watchSessionLimit(ctx, srv.Stats, o.sessions, 200*time.Millisecond, func() {
			log.Printf("chocoserver: session limit (%d) reached, exiting", o.sessions)
			cancel()
		})
	}

	if o.mode == "shard" {
		if o.peerAddr == "" {
			log.Fatalf("shard mode needs -peer-addr (the fabric peer-protocol listener)")
		}
		peerLn, err := net.Listen("tcp", o.peerAddr)
		if err != nil {
			log.Fatalf("peer listen: %v", err)
		}
		log.Printf("chocoserver[shard %s]: peer protocol on %s", id, o.peerAddr)
		if err := shard.Run(ctx, ln, peerLn); err != nil {
			log.Fatalf("shard: %v", err)
		}
	} else if err := srv.Serve(ctx, ln); err != nil {
		log.Fatalf("serve: %v", err)
	}

	st := srv.Stats()
	log.Printf("chocoserver: done: %d session(s) (%d rejected), %d inference(s), %.1f MB up / %.1f MB down, key cache %d hit(s) / %d miss(es) / %d replication(s)",
		st.SessionsTotal, st.SessionsRejected, st.Inferences,
		float64(st.BytesUp)/(1<<20), float64(st.BytesDown)/(1<<20),
		st.KeyCacheHits, st.KeyCacheMisses, st.KeyReplications)
	log.Printf("chocoserver: inference latency p50 %v p99 %v max %v over %d request(s)",
		st.InferenceLatency.P50, st.InferenceLatency.P99, st.InferenceLatency.Max, st.InferenceLatency.Count)
	if st.Batching.Enabled {
		log.Printf("chocoserver: batching: %d round(s), %d item(s) (%d coalesced, %d serial rescue(s)), plaintext cache %d hit(s) / %d miss(es)",
			st.Batching.Rounds, st.Batching.Items, st.Batching.CoalescedItems, st.Batching.SerialRescues,
			st.Batching.PlainCache.Hits, st.Batching.PlainCache.Misses)
	}
	for _, ts := range st.Tenants {
		log.Printf("chocoserver: tenant %q: %d session(s) (%d rejected), %d inference(s), %.1f MB up / %.1f MB down",
			ts.Tenant, ts.SessionsTotal, ts.SessionsRejected, ts.Inferences,
			float64(ts.BytesUp)/(1<<20), float64(ts.BytesDown)/(1<<20))
	}
}

// parseMembers parses the -shards flag: comma-separated
// id=clientAddr/peerAddr entries (the peer address optional but needed
// for key replication, health probes, and fleet stats).
func parseMembers(s string) ([]fabric.Member, error) {
	var out []fabric.Member
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, addrs, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("member %q: want id=clientAddr/peerAddr", entry)
		}
		client, peer, _ := strings.Cut(addrs, "/")
		if id == "" || client == "" {
			return nil, fmt.Errorf("member %q: empty id or client address", entry)
		}
		out = append(out, fabric.Member{ID: id, Addr: client, PeerAddr: peer})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("router mode needs at least one -shards member")
	}
	return out, nil
}

func runRouter(ctx context.Context, addr, shardsFlag, statsAddr string, healthEvery, idleTimeout, ioTimeout time.Duration) {
	members, err := parseMembers(shardsFlag)
	if err != nil {
		log.Fatalf("-shards: %v", err)
	}
	router := fabric.NewRouter(fabric.RouterConfig{
		Members:        members,
		HealthInterval: healthEvery,
		IdleTimeout:    idleTimeout,
		IOTimeout:      ioTimeout,
		Logf:           log.Printf,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("chocoserver[router]: fronting %d shard(s) on %s", len(members), addr)

	if statsAddr != "" {
		expvar.Publish("choco_fabric", expvar.Func(func() any { return router.Stats() }))
		mux := http.NewServeMux()
		mux.Handle("/fleet", router.FleetStatsHandler())
		mux.Handle("/healthz", router.FleetStatsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			log.Printf("chocoserver[router]: fleet stats on http://%s/fleet, readiness on /healthz", statsAddr)
			if err := http.ListenAndServe(statsAddr, mux); err != nil {
				log.Printf("stats endpoint: %v", err)
			}
		}()
	}

	if err := router.Serve(ctx, ln); err != nil {
		log.Fatalf("router: %v", err)
	}
	rs := router.Stats()
	log.Printf("chocoserver[router]: done: %d connection(s), %d session(s) routed (%d legacy), %d replication hint(s), %d route failure(s), %d ejection(s), %.1f MB up / %.1f MB down",
		rs.Connections, rs.RoutedSessions, rs.LegacyRouted, rs.ReplicationHints, rs.RouteFailures, rs.Ejections,
		float64(rs.BytesUp)/(1<<20), float64(rs.BytesDown)/(1<<20))
}
