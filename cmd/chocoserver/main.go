// Command chocoserver runs the untrusted CHOCO offload server over
// TCP: it holds the (synthetic) quantized model weights and serves
// many concurrent clients streaming client-aided inference sessions.
// The server never holds secret key material; it sees only ciphertexts
// and public evaluation keys.
//
// Built on internal/serve, it runs a bounded worker pool with
// admission control, caches evaluation keys per session ID so
// reconnecting clients skip the key re-upload, enforces idle and
// per-frame I/O deadlines, and exposes its accounting on an optional
// HTTP stats endpoint (-stats-addr): /stats for the JSON snapshot,
// /debug/vars for expvar.
//
// The demo model is the small LeNet-style network also used by the
// examples. Clients only need the architecture (nn.DemoNetwork); the
// weights stay server-side — the centralized-model deployment of §1.
package main

import (
	"context"
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"choco/internal/nn"
	"choco/internal/par"
	"choco/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7312", "listen address")
	weightSeed := flag.Int("weight-seed", 7, "deterministic weight seed (server-only; clients never see weights)")
	sessions := flag.Int("sessions", 0, "exit after this many sessions (0 = serve forever)")
	maxSessions := flag.Int("max-sessions", 8, "max concurrent sessions (worker pool size)")
	queueTimeout := flag.Duration("queue-timeout", 0, "how long a connection waits for a free worker slot before rejection (0 = reject immediately)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max gap between a client's requests before the session is closed")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "per-frame read/write deadline during an exchange")
	keyCache := flag.Int("key-cache", 64, "evaluation-key registry capacity (cached sessions for reconnects)")
	statsAddr := flag.String("stats-addr", "", "serve accounting over HTTP on this address (/stats JSON, /debug/vars expvar); empty disables")
	parallelism := flag.Int("parallelism", 0, "width of the process-wide HE worker pool shared by all sessions (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if *parallelism > 0 {
		par.SetParallelism(*parallelism)
	}

	net0 := nn.DemoNetwork()
	var seed [32]byte
	seed[0] = byte(*weightSeed)
	model := nn.SynthesizeWeights(net0, 4, seed)
	backend, err := nn.NewInferenceServer(model)
	if err != nil {
		log.Fatalf("compile model: %v", err)
	}

	srv := serve.New(backend, serve.Config{
		MaxSessions:  *maxSessions,
		QueueTimeout: *queueTimeout,
		IdleTimeout:  *idleTimeout,
		IOTimeout:    *ioTimeout,
		KeyCacheCap:  *keyCache,
		Logf:         log.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("chocoserver: serving %s (%d-layer model, %d MACs) on %s, %d worker slot(s), HE parallelism %d",
		net0.Name, len(net0.Layers), net0.MACs(), *addr, srv.MaxSessions(), par.Parallelism())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("chocoserver: shutdown requested, draining in-flight sessions")
		cancel()
	}()

	if *statsAddr != "" {
		expvar.Publish("choco_serve", expvar.Func(func() any { return srv.Stats() }))
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			log.Printf("chocoserver: stats on http://%s/stats", *statsAddr)
			if err := http.ListenAndServe(*statsAddr, mux); err != nil {
				log.Printf("stats endpoint: %v", err)
			}
		}()
	}

	if *sessions > 0 {
		go func() {
			tick := time.NewTicker(200 * time.Millisecond)
			defer tick.Stop()
			for range tick.C {
				st := srv.Stats()
				if st.SessionsTotal >= int64(*sessions) && st.SessionsActive == 0 {
					log.Printf("chocoserver: session limit (%d) reached, exiting", *sessions)
					cancel()
					return
				}
			}
		}()
	}

	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
	st := srv.Stats()
	log.Printf("chocoserver: done: %d session(s) (%d rejected), %d inference(s), %.1f MB up / %.1f MB down, key cache %d hit(s) / %d miss(es)",
		st.SessionsTotal, st.SessionsRejected, st.Inferences,
		float64(st.BytesUp)/(1<<20), float64(st.BytesDown)/(1<<20),
		st.KeyCacheHits, st.KeyCacheMisses)
	log.Printf("chocoserver: inference latency p50 %v p99 %v max %v over %d request(s)",
		st.InferenceLatency.P50, st.InferenceLatency.P99, st.InferenceLatency.Max, st.InferenceLatency.Count)
}
