// Command chocoserver runs the untrusted CHOCO offload server over
// TCP: it holds the (synthetic) quantized model weights and waits for
// clients to connect, ship their evaluation keys, and stream
// client-aided inference sessions. The server never holds secret key
// material; it sees only ciphertexts.
//
// The demo model is the small LeNet-style network also used by the
// examples. Clients only need the architecture (nn.DemoNetwork); the
// weights stay server-side — the centralized-model deployment of §1.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"choco/internal/nn"
	"choco/internal/protocol"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7312", "listen address")
	weightSeed := flag.Int("weight-seed", 7, "deterministic weight seed (server-only; clients never see weights)")
	sessions := flag.Int("sessions", 0, "exit after this many sessions (0 = serve forever)")
	flag.Parse()

	net0 := nn.DemoNetwork()
	var seed [32]byte
	seed[0] = byte(*weightSeed)
	model := nn.SynthesizeWeights(net0, 4, seed)
	server, err := nn.NewInferenceServer(model)
	if err != nil {
		log.Fatalf("compile model: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	log.Printf("chocoserver: serving %s (%d-layer model, %d MACs) on %s",
		net0.Name, len(net0.Layers), net0.MACs(), *addr)

	served := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		tr := protocol.NewConn(conn)
		if err := server.AcceptSetup(tr); err != nil {
			log.Printf("setup failed: %v", err)
			conn.Close()
			continue
		}
		log.Printf("client %s: evaluation keys installed", conn.RemoteAddr())
		for {
			ops, err := server.ServeOne(tr)
			if err != nil {
				log.Printf("client %s: session ended: %v", conn.RemoteAddr(), err)
				break
			}
			log.Printf("client %s: inference served (%+v), traffic up %d B / down %d B",
				conn.RemoteAddr(), ops, tr.ReceivedBytes(), tr.SentBytes())
		}
		conn.Close()
		served++
		if *sessions > 0 && served >= *sessions {
			fmt.Println("session limit reached; exiting")
			return
		}
	}
}
