module choco

go 1.23
