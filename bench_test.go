package choco

// One benchmark per table and figure of the paper's evaluation; each
// drives the corresponding generator in internal/bench, which produces
// the same rows/series the paper reports. Run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for paper-vs-measured values.

import (
	"testing"

	"choco/internal/bench"
)

func report(b *testing.B, out string, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if testing.Verbose() {
		b.Log("\n" + out)
	}
}

// BenchmarkTable1_OpComplexity measures each HE operation's latency at
// two ring degrees, confirming Table 1's complexity classes.
func BenchmarkTable1_OpComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Table1()
		report(b, out, err)
	}
}

// BenchmarkTable3_CiphertextSizes verifies the Table 3 presets and
// their serialized sizes.
func BenchmarkTable3_CiphertextSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Table3()
		report(b, out, err)
	}
}

// BenchmarkTable4_NoiseBudget measures the six noise-budget rows
// (initial / post-rotate / post-permute) with the exact noise meter.
func BenchmarkTable4_NoiseBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, _, err := bench.Table4()
		report(b, out, err)
	}
}

// BenchmarkTable5_Networks computes the network statistics table.
func BenchmarkTable5_Networks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Table5()
		report(b, out, err)
	}
}

// BenchmarkFig2_ClientBreakdown reproduces the motivation
// characterization: client software time is >99% HE operations.
func BenchmarkFig2_ClientBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Fig2()
		report(b, out, err)
	}
}

// BenchmarkFig7_DesignSpace sweeps the ~31k accelerator configurations
// and extracts the Pareto frontier and operating point.
func BenchmarkFig7_DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Fig7()
		report(b, out, err)
	}
}

// BenchmarkFig8_ScalingHWvsSW compares hardware and software
// encryption across (N, k) shapes.
func BenchmarkFig8_ScalingHWvsSW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, _, err := bench.Fig8()
		report(b, out, err)
	}
}

// BenchmarkFig10_CommVsPrior compares CHOCO's measured communication
// against seven prior protocols.
func BenchmarkFig10_CommVsPrior(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Fig10()
		report(b, out, err)
	}
}

// BenchmarkFig11_DistanceVariants evaluates the five distance-kernel
// packings across geometries.
func BenchmarkFig11_DistanceVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, _, err := bench.Fig11()
		report(b, out, err)
	}
}

// BenchmarkFig12_ClientAccel extends Fig 2 with CHOCO and CHOCO-TACO.
func BenchmarkFig12_ClientAccel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, _, err := bench.Fig12()
		report(b, out, err)
	}
}

// BenchmarkFig13_PageRank explores PageRank refresh schedules for BFV
// and CKKS.
func BenchmarkFig13_PageRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Fig13()
		report(b, out, err)
	}
}

// BenchmarkFig14_EndToEnd compares end-to-end offload vs local
// inference in time and energy.
func BenchmarkFig14_EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, _, err := bench.Fig14()
		report(b, out, err)
	}
}

// BenchmarkFig15_MACsVsComm sweeps convolution shapes for the
// computation-vs-communication study.
func BenchmarkFig15_MACsVsComm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, _, err := bench.Fig15()
		report(b, out, err)
	}
}

// BenchmarkEncDecSpeedup reports the §4.5/§4.6 headline accelerator
// results.
func BenchmarkEncDecSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.EncDecSpeedups()
		if out == "" {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkAblationRotationalRedundancy measures the fast windowed
// rotation against the masked-permutation baseline on live HE.
func BenchmarkAblationRotationalRedundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationRotRed()
		report(b, out, err)
	}
}

// BenchmarkAblationBSGS measures BSGS against the naive diagonal
// method for encrypted matrix-vector products.
func BenchmarkAblationBSGS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationBSGS()
		report(b, out, err)
	}
}

// BenchmarkAblationParameterMinimization quantifies the ciphertext
// shrinkage from CHOCO's parameter selection (§3.3's 50% claim).
func BenchmarkAblationParameterMinimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationParamMinimization()
		report(b, out, err)
	}
}

// BenchmarkAblationPackedVsBatched measures §2.1's layout dichotomy on
// live HE.
func BenchmarkAblationPackedVsBatched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.AblationPackedVsBatched()
		report(b, out, err)
	}
}
