// Quickstart: encrypt a vector under BFV, have an "untrusted server"
// add, multiply, and rotate it homomorphically, and decrypt — the
// 40-line tour of the HE substrate underneath CHOCO.
package main

import (
	"fmt"
	"log"

	"choco"
	"choco/internal/bfv"
)

func main() {
	// Paper parameter set B: N=4096, {36,36,37}, log t = 18 (Table 3).
	params := choco.PresetB()
	ctx, err := choco.NewBFVContext(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFV: N=%d, log2 q=%d, ciphertext %d bytes\n",
		params.N(), params.LogQ()+params.PBits, params.CiphertextBytes())

	// Client side: keys, encryption.
	kg := bfv.NewKeyGenerator(ctx, [32]byte{1})
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	relin := kg.GenRelinearizationKey(sk)
	rot := kg.GenRotationKeys(sk, 1)
	enc := bfv.NewEncryptor(ctx, pk, [32]byte{2})
	dec := bfv.NewDecryptor(ctx, sk)
	ecd := bfv.NewEncoder(ctx)

	data := []uint64{15, 6, 20, 3, 14, 0}
	ct, err := enc.EncryptUints(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted %v (noise budget %d bits)\n", data, bfv.NoiseBudget(ctx, sk, ct))

	// Server side: homomorphic SIMD arithmetic (Fig 1 of the paper).
	ev := bfv.NewEvaluator(ctx, relin, rot)
	weights, _ := ecd.EncodeUints([]uint64{3, 14, 0, 2, 2, 2})
	product := ev.MulPlain(ct, ev.PrepareMul(weights))
	sum := ev.Add(product, product)
	rotated, err := ev.RotateRows(sum, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Client side: decrypt.
	fmt.Printf("2·(x⊙w):     %v\n", dec.DecryptUints(sum)[:6])
	fmt.Printf("rotated by 1: %v\n", dec.DecryptUints(rotated)[:6])
	fmt.Printf("noise budget remaining: %d bits\n", bfv.NoiseBudget(ctx, sk, rotated))
}
