// Client-aided encrypted PageRank (§5.1/§5.6): the rank vector stays
// encrypted while the server iterates the damped transition matrix
// homomorphically; the client refreshes the ciphertext every few
// iterations — and the demo shows the paper's counter-intuitive
// finding that frequent refreshes with small parameters beat long
// fully-encrypted runs.
package main

import (
	"fmt"
	"log"
	"sort"

	"choco/internal/apps/pagerank"
	"choco/internal/bfv"
	"choco/internal/params"
	"choco/internal/protocol"
)

func main() {
	graph, err := pagerank.Synthesize(32, 4, 0.85, [32]byte{5})
	if err != nil {
		log.Fatal(err)
	}
	const iters = 8

	want := graph.PlainRank(iters)
	fmt.Printf("graph: %d nodes, damping 0.85, %d iterations\n", graph.N, iters)

	bfvParams := bfv.Parameters{LogN: 12, QBits: []int{58, 58}, PBits: 59, TBits: 26, Sigma: 3.2}
	runner, err := pagerank.NewBFVRunner(graph, bfvParams, 8, 8, [32]byte{6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFV capacity: %d consecutive encrypted iterations before a refresh\n", runner.MaxSetSize())

	for _, setSize := range []int{1, 2} {
		clientEnd, serverEnd := protocol.NewPipe()
		ranks, stats, err := runner.Run(iters, setSize, clientEnd, serverEnd)
		clientEnd.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("set size %d: l1 error vs cleartext %.4f | %d refreshes | %.1f KB total comm\n",
			setSize, pagerank.L1Distance(ranks, want), stats.Decryptions-0,
			float64(stats.TotalBytes())/1024)
	}

	// Which node ranks highest?
	clientEnd, serverEnd := protocol.NewPipe()
	ranks, _, err := runner.Run(iters, 2, clientEnd, serverEnd)
	clientEnd.Close()
	if err != nil {
		log.Fatal(err)
	}
	type nodeRank struct {
		node int
		r    float64
	}
	var nr []nodeRank
	for i, r := range ranks {
		nr = append(nr, nodeRank{i, r})
	}
	sort.Slice(nr, func(i, j int) bool { return nr[i].r > nr[j].r })
	fmt.Printf("top nodes: ")
	for _, x := range nr[:3] {
		fmt.Printf("%d (%.4f) ", x.node, x.r)
	}
	fmt.Println()

	// The Fig 13 exploration: which refresh schedule minimizes
	// communication once parameters are minimized per schedule?
	fmt.Println("\nFig 13-style schedule exploration (24 iterations):")
	for _, plan := range params.PageRankPlansBFV(24, 24, 1024, 1) {
		fmt.Printf("  BFV  set=%2d: ciphertext %7d B, total %8d B\n",
			plan.SetSize, plan.CtxBytes, plan.TotalCommBytes)
	}
	for _, plan := range params.PageRankPlansCKKS(24, 30, 1024, 1) {
		fmt.Printf("  CKKS set=%2d: ciphertext %7d B, total %8d B\n",
			plan.SetSize, plan.CtxBytes, plan.TotalCommBytes)
	}
}
