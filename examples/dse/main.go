// Accelerator design-space exploration (§4.4): sweep CHOCO-TACO
// configurations, walk the Pareto frontier, and pick an operating
// point under a power envelope — then see what that silicon buys the
// client at every HE parameter shape (Fig 8).
package main

import (
	"fmt"

	"choco/internal/accel"
	"choco/internal/device"
)

func main() {
	shape := device.HEShape{N: 8192, K: 3}
	points := accel.Explore(shape)
	fmt.Printf("explored %d accelerator configurations at (N=%d, k=%d)\n",
		len(points), shape.N, shape.K)

	frontier := accel.ParetoFrontier(points)
	fmt.Printf("pareto-optimal designs: %d\n\n", len(frontier))

	for _, cap := range []float64{0.100, 0.200, 0.400} {
		chosen, ok := accel.SelectOperatingPoint(points, cap, 0.01)
		if !ok {
			fmt.Printf("%3.0f mW cap: infeasible\n", cap*1e3)
			continue
		}
		fmt.Printf("%3.0f mW cap → encrypt %.3f ms, %.1f mm², %.4f mJ  %+v\n",
			cap*1e3, chosen.TimeS*1e3, chosen.AreaMM2, chosen.EnergyJ*1e3, chosen.Config)
	}

	cfg := accel.PaperConfig()
	client := device.DefaultClient()
	fmt.Printf("\npaper operating point %+v:\n", cfg)
	fmt.Printf("%-14s %12s %12s %10s\n", "(N,k)", "SW encrypt", "HW encrypt", "speedup")
	for _, s := range []device.HEShape{
		{N: 2048, K: 1}, {N: 4096, K: 2}, {N: 8192, K: 3}, {N: 16384, K: 8},
	} {
		sw, hw := client.EncryptTime(s), cfg.EncryptTime(s)
		fmt.Printf("(%d,%d)%*s %9.1f ms %9.3f ms %9.0f×\n",
			s.N, s.K, 12-len(fmt.Sprintf("(%d,%d)", s.N, s.K)), "", sw*1e3, hw*1e3, sw/hw)
	}
}
