// Encrypted K-Nearest-Neighbors (§5.1): the server aggregates a
// labeled point set (from many clients — data a single client could
// never hold); a client classifies its private query with a single
// encrypted interaction using the client-optimal collapsed
// point-major packing (Fig 9 / §5.4).
package main

import (
	"fmt"
	"log"

	"choco/internal/apps/distance"
	"choco/internal/protocol"
	"choco/internal/sampling"
)

func main() {
	// Server data: two Gaussian blobs with labels 0 and 1.
	src := sampling.NewSource([32]byte{9}, "knn-demo")
	var points [][]float64
	var labels []int
	for i := 0; i < 32; i++ {
		cx, cy, label := 2.0, 2.0, 0
		if i%2 == 1 {
			cx, cy, label = -2.0, -2.0, 1
		}
		points = append(points, []float64{cx + src.NormFloat64()*0.5, cy + src.NormFloat64()*0.5})
		labels = append(labels, label)
	}

	kernel, err := distance.NewKernel(distance.PresetDistance(), points, [32]byte{10})
	if err != nil {
		log.Fatal(err)
	}
	knn, err := distance.NewKNN(kernel, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server holds %d labeled points (CKKS, N=%d)\n", kernel.M(), distance.PresetDistance().N())

	queries := [][]float64{{1.8, 2.3}, {-1.5, -2.2}, {0.4, 0.3}}
	for _, q := range queries {
		clientEnd, serverEnd := protocol.NewPipe()
		label, stats, err := knn.Classify(q, 5, distance.CollapsedPointMajor, clientEnd, serverEnd)
		clientEnd.Close()
		if err != nil {
			log.Fatal(err)
		}
		plain := distance.PlainKNN(points, labels, q, 5)
		status := "matches cleartext"
		if label != plain {
			status = fmt.Sprintf("MISMATCH (plain %d)", plain)
		}
		fmt.Printf("query %v → class %d (%s); 1 round trip: %.1f KB up, %.1f KB down\n",
			q, label, status, float64(stats.UpBytes)/1024, float64(stats.DownBytes)/1024)
	}
	fmt.Println("the collapsed packing downloads a single dense ciphertext —")
	fmt.Println("extra server masking work traded for minimal client cost (§5.4).")
}
