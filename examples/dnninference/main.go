// Client-aided encrypted DNN inference (§5.1): the client encrypts an
// image; the server — holding only the client's evaluation keys and
// the model weights — evaluates convolution and fully-connected layers
// homomorphically with rotational redundancy; the client decrypts
// between layers to apply ReLU/pooling and re-encrypt, refreshing the
// noise budget. The result matches cleartext inference exactly, and
// every client cost (encryptions, decryptions, bytes) is accounted.
package main

import (
	"fmt"
	"log"
	"time"

	"choco/internal/nn"
	"choco/internal/protocol"
)

func main() {
	network := nn.DemoNetwork()
	fmt.Printf("network %s: %d layers, %d MACs, parameters N=%d (preset B)\n",
		network.Name, len(network.Layers), network.MACs(), network.Params.N())

	// The server owns the weights; the client knows the architecture.
	model := nn.SynthesizeWeights(network, 4, [32]byte{7})
	server, err := nn.NewInferenceServer(model)
	if err != nil {
		log.Fatal(err)
	}
	client, err := nn.NewInferenceClient(network, [32]byte{42})
	if err != nil {
		log.Fatal(err)
	}

	clientEnd, serverEnd := protocol.NewPipe()
	defer clientEnd.Close()
	serverOps := make(chan nn.ServerOps, 1)
	go func() {
		if err := server.AcceptSetup(serverEnd); err != nil {
			log.Fatal(err)
		}
		ops, err := server.ServeOne(serverEnd)
		if err != nil {
			log.Fatal(err)
		}
		serverOps <- ops
	}()

	if err := client.Setup(clientEnd); err != nil {
		log.Fatal(err)
	}

	img := nn.SynthesizeImage(network, 4, [32]byte{3})
	start := time.Now()
	logits, stats, err := client.Infer(img, clientEnd)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Cross-check against cleartext inference.
	want, err := nn.PlainInference(model, img)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if logits[i] != want[i] {
			log.Fatalf("logit %d mismatch: encrypted %d vs plain %d", i, logits[i], want[i])
		}
	}

	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	fmt.Printf("encrypted inference matches cleartext exactly; class = %d\n", best)
	fmt.Printf("wall time: %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("client costs: %d encryptions, %d decryptions\n", stats.Encryptions, stats.Decryptions)
	fmt.Printf("communication: %.1f KB up, %.1f KB down (%d + %d ciphertexts)\n",
		float64(stats.UpBytes)/1024, float64(stats.DownBytes)/1024,
		stats.UpCiphertexts, stats.DownCiphertexts)
	ops := <-serverOps
	fmt.Printf("server ops: %d rotations, %d plaintext multiplies, %d additions — zero ciphertext multiplies\n",
		ops.Rotations, ops.PlainMults, ops.Adds)
}
